package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"cuisinevol/internal/corpusstore"
	"cuisinevol/internal/itemset"
)

// latencyBuckets are the histogram upper bounds in seconds. They span
// sub-millisecond cache hits through multi-minute full-scale Fig 4
// ensembles.
var latencyBuckets = [numBuckets]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300}

const numBuckets = 9

// metrics is a dependency-free Prometheus-style registry covering the
// serving layer: per-endpoint request counts and latency histograms,
// cache traffic, coalescing, and compute-pool occupancy. Exposition is
// deterministic (sorted label sets) so /metrics itself is testable.
type metrics struct {
	mu sync.Mutex
	// requests[endpoint][status] counts completed requests.
	requests map[string]map[int]uint64
	// latency[endpoint] is a cumulative histogram over latencyBuckets.
	latency map[string]*histogram

	coalesced    atomic.Uint64 // requests served by joining another's computation
	computations atomic.Uint64 // underlying pipeline computations executed
	inflight     atomic.Int64  // computations currently holding a compute slot
	waiting      atomic.Int64  // computations queued on the compute semaphore

	// Live-index (incremental append) counters.
	liveAppends    atomic.Uint64 // append operations served through a live head
	liveAppendedTx atomic.Uint64 // transactions appended incrementally (delta sizes)
	liveSeeds      atomic.Uint64 // live heads seeded by a full O(n) build
	liveSnapshots  atomic.Uint64 // epoch snapshots materialized into the index cache

	// Peering (multi-node serving tier) counters.
	peerProxied            atomic.Uint64 // requests relayed to their key's owning node
	peerFallback           atomic.Uint64 // owner-unreachable requests served by bounded local compute
	peerFallbackShed       atomic.Uint64 // owner-unreachable requests shed (fallback budget exhausted)
	peerRingMoves          atomic.Uint64 // keyspace arcs reassigned by membership updates
	peerSnapshotSaves      atomic.Uint64 // cache snapshots written to disk
	peerSnapshotLoads      atomic.Uint64 // cache snapshots restored at startup
	peerSnapshotLoadErrors atomic.Uint64 // snapshot loads rejected by verification (quarantined)
	peerSnapshotEntries    atomic.Uint64 // cache entries restored from snapshots

	shedComputations atomic.Uint64 // computations rejected at admission (queue full)
	deadlineTimeouts atomic.Uint64 // requests that exceeded their deadline budget
	// chaosInjected counts injected faults by Fault kind (all zero when
	// chaos is disabled).
	chaosInjected [FaultItem + 1]atomic.Uint64
}

type histogram struct {
	counts [numBuckets + 1]uint64 // +Inf bucket last
	sum    float64
	total  uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[int]uint64),
		latency:  make(map[string]*histogram),
	}
}

// observe records one completed request.
func (m *metrics) observe(endpoint string, status int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[endpoint]
	if byStatus == nil {
		byStatus = make(map[int]uint64)
		m.requests[endpoint] = byStatus
	}
	byStatus[status]++
	h := m.latency[endpoint]
	if h == nil {
		h = &histogram{}
		m.latency[endpoint] = h
	}
	idx := numBuckets
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.sum += seconds
	h.total++
}

// WriteTo renders the registry in Prometheus text exposition format
// (version 0.0.4). Families and label values are emitted in sorted
// order.
func (m *metrics) WriteTo(w io.Writer, cache *resultCache, indexes *itemset.IndexCache, registry *corpusstore.Registry, live *liveSet) error {
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.requests))
	for ep := range m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)

	var b []byte
	appendf := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}

	appendf("# HELP cuisinevol_http_requests_total Completed HTTP requests by endpoint and status code.\n")
	appendf("# TYPE cuisinevol_http_requests_total counter\n")
	for _, ep := range endpoints {
		statuses := make([]int, 0, len(m.requests[ep]))
		for s := range m.requests[ep] {
			statuses = append(statuses, s)
		}
		sort.Ints(statuses)
		for _, s := range statuses {
			appendf("cuisinevol_http_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, s, m.requests[ep][s])
		}
	}

	appendf("# HELP cuisinevol_http_request_duration_seconds Request latency by endpoint.\n")
	appendf("# TYPE cuisinevol_http_request_duration_seconds histogram\n")
	for _, ep := range endpoints {
		h := m.latency[ep]
		if h == nil {
			continue
		}
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			appendf("cuisinevol_http_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		cum += h.counts[numBuckets]
		appendf("cuisinevol_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		appendf("cuisinevol_http_request_duration_seconds_sum{endpoint=%q} %s\n",
			ep, strconv.FormatFloat(h.sum, 'g', -1, 64))
		appendf("cuisinevol_http_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.total)
	}
	m.mu.Unlock()

	hits, misses, evictions, used, entries := cache.Stats()
	appendf("# HELP cuisinevol_cache_hits_total Result-cache hits.\n")
	appendf("# TYPE cuisinevol_cache_hits_total counter\n")
	appendf("cuisinevol_cache_hits_total %d\n", hits)
	appendf("# HELP cuisinevol_cache_misses_total Result-cache misses.\n")
	appendf("# TYPE cuisinevol_cache_misses_total counter\n")
	appendf("cuisinevol_cache_misses_total %d\n", misses)
	appendf("# HELP cuisinevol_cache_evictions_total Entries evicted to fit the byte budget.\n")
	appendf("# TYPE cuisinevol_cache_evictions_total counter\n")
	appendf("cuisinevol_cache_evictions_total %d\n", evictions)
	appendf("# HELP cuisinevol_cache_bytes Bytes of response bodies currently cached.\n")
	appendf("# TYPE cuisinevol_cache_bytes gauge\n")
	appendf("cuisinevol_cache_bytes %d\n", used)
	appendf("# HELP cuisinevol_cache_entries Entries currently cached.\n")
	appendf("# TYPE cuisinevol_cache_entries gauge\n")
	appendf("cuisinevol_cache_entries %d\n", entries)

	ist := indexes.Stats()
	appendf("# HELP cuisinevol_index_builds_total Corpus-index builds executed (singleflight-deduplicated).\n")
	appendf("# TYPE cuisinevol_index_builds_total counter\n")
	appendf("cuisinevol_index_builds_total %d\n", ist.Builds)
	appendf("# HELP cuisinevol_index_hits_total Index-cache lookups served from a cached index.\n")
	appendf("# TYPE cuisinevol_index_hits_total counter\n")
	appendf("cuisinevol_index_hits_total %d\n", ist.Hits)
	appendf("# HELP cuisinevol_index_misses_total Index-cache lookups that had to build or join an in-flight build.\n")
	appendf("# TYPE cuisinevol_index_misses_total counter\n")
	appendf("cuisinevol_index_misses_total %d\n", ist.Misses)
	appendf("# HELP cuisinevol_index_evictions_total Indexes evicted to fit the byte budget.\n")
	appendf("# TYPE cuisinevol_index_evictions_total counter\n")
	appendf("cuisinevol_index_evictions_total %d\n", ist.Evictions)
	appendf("# HELP cuisinevol_index_invalidations_total Index entries dropped by fingerprint invalidation (corpus deletes).\n")
	appendf("# TYPE cuisinevol_index_invalidations_total counter\n")
	appendf("cuisinevol_index_invalidations_total %d\n", ist.Invalidations)
	appendf("# HELP cuisinevol_index_bytes Bytes of prebuilt corpus indexes currently retained.\n")
	appendf("# TYPE cuisinevol_index_bytes gauge\n")
	appendf("cuisinevol_index_bytes %d\n", ist.Bytes)
	appendf("# HELP cuisinevol_index_entries Corpus indexes currently cached.\n")
	appendf("# TYPE cuisinevol_index_entries gauge\n")
	appendf("cuisinevol_index_entries %d\n", ist.Entries)
	appendf("# HELP cuisinevol_index_container_array_total Items laid out as sorted-array posting containers, across all indexes cached.\n")
	appendf("# TYPE cuisinevol_index_container_array_total counter\n")
	appendf("cuisinevol_index_container_array_total %d\n", ist.ContainerArrays)
	appendf("# HELP cuisinevol_index_container_bitset_total Items laid out as dense-bitset posting containers, across all indexes cached.\n")
	appendf("# TYPE cuisinevol_index_container_bitset_total counter\n")
	appendf("cuisinevol_index_container_bitset_total %d\n", ist.ContainerBitsets)
	appendf("# HELP cuisinevol_index_container_run_total Items laid out as run-length posting containers, across all indexes cached.\n")
	appendf("# TYPE cuisinevol_index_container_run_total counter\n")
	appendf("cuisinevol_index_container_run_total %d\n", ist.ContainerRuns)
	appendf("# HELP cuisinevol_index_bytes_saved_total Posting bytes the adaptive container layout saved over a uniform dense one, across all indexes cached.\n")
	appendf("# TYPE cuisinevol_index_bytes_saved_total counter\n")
	appendf("cuisinevol_index_bytes_saved_total %d\n", ist.BytesSaved)

	rst := registry.Stats()
	appendf("# HELP cuisinevol_corpus_loads_total Corpus loads from the backing store (singleflight-deduplicated).\n")
	appendf("# TYPE cuisinevol_corpus_loads_total counter\n")
	appendf("cuisinevol_corpus_loads_total %d\n", rst.Loads)
	appendf("# HELP cuisinevol_corpus_load_hits_total Corpus resolutions served from a memoized corpus.\n")
	appendf("# TYPE cuisinevol_corpus_load_hits_total counter\n")
	appendf("cuisinevol_corpus_load_hits_total %d\n", rst.LoadHits)
	appendf("# HELP cuisinevol_corpus_load_misses_total Corpus resolutions that had to load (or join an in-flight load).\n")
	appendf("# TYPE cuisinevol_corpus_load_misses_total counter\n")
	appendf("cuisinevol_corpus_load_misses_total %d\n", rst.LoadMisses)
	appendf("# HELP cuisinevol_corpus_puts_total Corpora registered (distinct content).\n")
	appendf("# TYPE cuisinevol_corpus_puts_total counter\n")
	appendf("cuisinevol_corpus_puts_total %d\n", rst.Puts)
	appendf("# HELP cuisinevol_corpus_deletes_total Corpora deleted from the registry.\n")
	appendf("# TYPE cuisinevol_corpus_deletes_total counter\n")
	appendf("cuisinevol_corpus_deletes_total %d\n", rst.Deletes)
	appendf("# HELP cuisinevol_corpus_loaded_bytes Serialized bytes of corpora currently memoized in memory.\n")
	appendf("# TYPE cuisinevol_corpus_loaded_bytes gauge\n")
	appendf("cuisinevol_corpus_loaded_bytes %d\n", rst.LoadedBytes)
	appendf("# HELP cuisinevol_corpus_loaded_entries Corpora currently memoized in memory.\n")
	appendf("# TYPE cuisinevol_corpus_loaded_entries gauge\n")
	appendf("cuisinevol_corpus_loaded_entries %d\n", rst.LoadedEntries)
	appendf("# HELP cuisinevol_corpus_store_bytes Payload bytes in the backing corpus store.\n")
	appendf("# TYPE cuisinevol_corpus_store_bytes gauge\n")
	appendf("cuisinevol_corpus_store_bytes %d\n", rst.StoreBytes)
	appendf("# HELP cuisinevol_corpus_store_entries Corpora in the backing store.\n")
	appendf("# TYPE cuisinevol_corpus_store_entries gauge\n")
	appendf("cuisinevol_corpus_store_entries %d\n", rst.StoreEntries)

	liveHeads, liveEpochs := live.snapshotStats()
	appendf("# HELP cuisinevol_live_appends_total Corpus appends served through an incremental live-index head.\n")
	appendf("# TYPE cuisinevol_live_appends_total counter\n")
	appendf("cuisinevol_live_appends_total %d\n", m.liveAppends.Load())
	appendf("# HELP cuisinevol_live_appended_tx_total Transactions appended incrementally (delta sizes, O(delta) each).\n")
	appendf("# TYPE cuisinevol_live_appended_tx_total counter\n")
	appendf("cuisinevol_live_appended_tx_total %d\n", m.liveAppendedTx.Load())
	appendf("# HELP cuisinevol_live_seeds_total Live heads seeded by a full corpus build (cold lineage, restart, or head eviction).\n")
	appendf("# TYPE cuisinevol_live_seeds_total counter\n")
	appendf("cuisinevol_live_seeds_total %d\n", m.liveSeeds.Load())
	appendf("# HELP cuisinevol_live_snapshots_total Epoch snapshots materialized into the index cache by appends.\n")
	appendf("# TYPE cuisinevol_live_snapshots_total counter\n")
	appendf("cuisinevol_live_snapshots_total %d\n", m.liveSnapshots.Load())
	appendf("# HELP cuisinevol_live_heads Live-index write heads currently retained.\n")
	appendf("# TYPE cuisinevol_live_heads gauge\n")
	appendf("cuisinevol_live_heads %d\n", liveHeads)
	appendf("# HELP cuisinevol_live_epochs Summed mutation epochs across retained live heads.\n")
	appendf("# TYPE cuisinevol_live_epochs gauge\n")
	appendf("cuisinevol_live_epochs %d\n", liveEpochs)

	appendf("# HELP cuisinevol_coalesced_requests_total Requests served by joining an identical in-flight computation.\n")
	appendf("# TYPE cuisinevol_coalesced_requests_total counter\n")
	appendf("cuisinevol_coalesced_requests_total %d\n", m.coalesced.Load())
	appendf("# HELP cuisinevol_computations_total Underlying pipeline computations executed.\n")
	appendf("# TYPE cuisinevol_computations_total counter\n")
	appendf("cuisinevol_computations_total %d\n", m.computations.Load())
	appendf("# HELP cuisinevol_compute_inflight Computations currently holding a compute slot.\n")
	appendf("# TYPE cuisinevol_compute_inflight gauge\n")
	appendf("cuisinevol_compute_inflight %d\n", m.inflight.Load())
	appendf("# HELP cuisinevol_compute_waiting Computations queued for a compute slot.\n")
	appendf("# TYPE cuisinevol_compute_waiting gauge\n")
	appendf("cuisinevol_compute_waiting %d\n", m.waiting.Load())

	appendf("# HELP cuisinevol_peer_proxied_total Requests relayed to the node owning their cache key.\n")
	appendf("# TYPE cuisinevol_peer_proxied_total counter\n")
	appendf("cuisinevol_peer_proxied_total %d\n", m.peerProxied.Load())
	appendf("# HELP cuisinevol_peer_fallback_total Owner-unreachable requests served by bounded local compute.\n")
	appendf("# TYPE cuisinevol_peer_fallback_total counter\n")
	appendf("cuisinevol_peer_fallback_total %d\n", m.peerFallback.Load())
	appendf("# HELP cuisinevol_peer_fallback_shed_total Owner-unreachable requests shed because the fallback budget was exhausted.\n")
	appendf("# TYPE cuisinevol_peer_fallback_shed_total counter\n")
	appendf("cuisinevol_peer_fallback_shed_total %d\n", m.peerFallbackShed.Load())
	appendf("# HELP cuisinevol_peer_ring_moves_total Keyspace arcs reassigned by peer membership updates.\n")
	appendf("# TYPE cuisinevol_peer_ring_moves_total counter\n")
	appendf("cuisinevol_peer_ring_moves_total %d\n", m.peerRingMoves.Load())
	appendf("# HELP cuisinevol_peer_snapshot_saves_total Result-cache snapshots written to disk.\n")
	appendf("# TYPE cuisinevol_peer_snapshot_saves_total counter\n")
	appendf("cuisinevol_peer_snapshot_saves_total %d\n", m.peerSnapshotSaves.Load())
	appendf("# HELP cuisinevol_peer_snapshot_loads_total Result-cache snapshots restored at startup.\n")
	appendf("# TYPE cuisinevol_peer_snapshot_loads_total counter\n")
	appendf("cuisinevol_peer_snapshot_loads_total %d\n", m.peerSnapshotLoads.Load())
	appendf("# HELP cuisinevol_peer_snapshot_load_errors_total Snapshot loads rejected by verification (file quarantined, node started cold).\n")
	appendf("# TYPE cuisinevol_peer_snapshot_load_errors_total counter\n")
	appendf("cuisinevol_peer_snapshot_load_errors_total %d\n", m.peerSnapshotLoadErrors.Load())
	appendf("# HELP cuisinevol_peer_snapshot_entries_total Cache entries restored from snapshots.\n")
	appendf("# TYPE cuisinevol_peer_snapshot_entries_total counter\n")
	appendf("cuisinevol_peer_snapshot_entries_total %d\n", m.peerSnapshotEntries.Load())

	appendf("# HELP cuisinevol_shed_total Computations rejected at admission because the wait queue was full.\n")
	appendf("# TYPE cuisinevol_shed_total counter\n")
	appendf("cuisinevol_shed_total %d\n", m.shedComputations.Load())
	appendf("# HELP cuisinevol_deadline_timeouts_total Requests that exceeded their deadline budget (504).\n")
	appendf("# TYPE cuisinevol_deadline_timeouts_total counter\n")
	appendf("cuisinevol_deadline_timeouts_total %d\n", m.deadlineTimeouts.Load())
	appendf("# HELP cuisinevol_chaos_injected_total Faults injected by the chaos layer, by kind.\n")
	appendf("# TYPE cuisinevol_chaos_injected_total counter\n")
	for f := FaultError; f <= FaultItem; f++ {
		appendf("cuisinevol_chaos_injected_total{fault=%q} %d\n", f.String(), m.chaosInjected[f].Load())
	}

	_, err := w.Write(b)
	return err
}
