package server

import (
	"testing"
)

// TestResponsesAreByteDeterministic computes the same endpoints on two
// independent servers over the same corpus and requires identical
// bytes: the content-addressed cache and HTTP caching headers are only
// sound if a recomputation can never produce different bytes for the
// same key.
func TestResponsesAreByteDeterministic(t *testing.T) {
	_, tsA := newTestServer(t)
	_, tsB := newTestServer(t)
	paths := []string{
		"/v1/cuisines",
		"/v1/table1",
		"/v1/fig1",
		"/v1/fig2",
		"/v1/fig3",
		"/v1/fig4?regions=ITA,USA&replicates=2&dists=true",
		"/v1/mine?region=KOR&top=15",
		"/v1/overrep?region=USA&k=5",
		"/v1/evolve?region=ITA&model=CM-R&replicates=2",
	}
	for _, path := range paths {
		respA, bodyA := get(t, tsA, path)
		respB, bodyB := get(t, tsB, path)
		if respA.StatusCode != 200 || respB.StatusCode != 200 {
			t.Fatalf("GET %s: statuses %d/%d", path, respA.StatusCode, respB.StatusCode)
		}
		if string(bodyA) != string(bodyB) {
			t.Fatalf("GET %s: fresh computations produced different bytes\nA: %.200s\nB: %.200s", path, bodyA, bodyB)
		}
		if respA.Header.Get("ETag") != respB.Header.Get("ETag") {
			t.Fatalf("GET %s: ETags differ across servers", path)
		}
	}
}

// TestFingerprintTracksCorpusContent: the same corpus must fingerprint
// identically across servers (it keys the shared cache), and the
// fingerprint must be derived from content, not identity.
func TestFingerprintTracksCorpusContent(t *testing.T) {
	corpus := testCorpus(t)
	a, err := New(Options{Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Corpus: corpus})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same corpus, different fingerprints")
	}
	if len(a.Fingerprint()) != 32 {
		t.Fatalf("fingerprint %q not 128-bit hex", a.Fingerprint())
	}
}
