package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cuisinevol/internal/corpusstore"
	"cuisinevol/internal/ingredient"
	"cuisinevol/internal/itemset"
)

// appendJSONL is the delta streamed onto uploadJSONL's corpus by the
// append tests: two more records touching both of its regions.
const appendJSONL = `{"title":"Arrabbiata","region":"ITA","ingredients":["tomato","garlic","olive oil"]}
{"title":"Japchae","region":"KOR","ingredients":["sesame oil","garlic","rice"]}
`

// appendRespBody mirrors the POST /v1/corpora/{id}/append response.
type appendRespBody struct {
	Corpus corpusRow `json:"corpus"`
	Parent corpusRow `json:"parent"`
	Stats  struct {
		RawRecords int `json:"raw_records"`
		Accepted   int `json:"accepted"`
	} `json:"stats"`
	Skipped int `json:"skipped_records"`
	Index   struct {
		Incremental bool   `json:"incremental"`
		Epoch       uint64 `json:"epoch"`
		AppendedTx  int    `json:"appended_transactions"`
	} `json:"index"`
}

// cachedIndex fetches the index cache entry for key, failing the test
// if the entry is absent (the build callback must never fire).
func cachedIndex(t *testing.T, srv *Server, key string) *itemset.Index {
	t.Helper()
	ix, err := srv.indexes.Get(key, func() ([][]ingredient.ID, error) {
		t.Fatalf("index %s was not pre-cached: build callback invoked", key)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestCorpusAppendIncremental drives the incremental path end to end:
// upload → append (seeds the live head) → append again (O(delta)),
// asserting each child version's whole-corpus index lands in the
// IndexCache pre-built and byte-identical to a from-scratch build, and
// that the first analytics query against the child finds it warm.
func TestCorpusAppendIncremental(t *testing.T) {
	srv, ts := newTestServer(t)

	var up uploadBody
	if resp := doJSON(t, ts, http.MethodPost, "/v1/corpora?name=grow", uploadJSONL, &up); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d", resp.StatusCode)
	}

	// First append: no head is warm for this lineage, so it seeds O(n)
	// and reports incremental=false.
	var ap1 appendRespBody
	if resp := doJSON(t, ts, http.MethodPost, "/v1/corpora/grow/append", appendJSONL, &ap1); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first append: %d", resp.StatusCode)
	}
	if ap1.Corpus.Ref != "grow@2" || ap1.Parent.Ref != "grow@1" {
		t.Fatalf("append versions = %s from %s (want grow@2 from grow@1)", ap1.Corpus.Ref, ap1.Parent.Ref)
	}
	if ap1.Corpus.Recipes != 6 || ap1.Stats.Accepted != 2 || ap1.Index.AppendedTx != 2 {
		t.Fatalf("append accounting = %+v", ap1)
	}
	if ap1.Index.Incremental {
		t.Fatal("first append along a lineage reported incremental=true (no head could be warm)")
	}
	if ap1.Index.Epoch == 0 {
		t.Fatal("append reported epoch 0")
	}
	if ap1.Corpus.ID == ap1.Parent.ID {
		t.Fatal("child shares the parent fingerprint")
	}

	// Second append rides the head re-keyed under grow@2: incremental.
	var ap2 appendRespBody
	if resp := doJSON(t, ts, http.MethodPost, "/v1/corpora/grow/append", appendJSONL, &ap2); resp.StatusCode != http.StatusCreated {
		t.Fatalf("second append: %d", resp.StatusCode)
	}
	if ap2.Corpus.Ref != "grow@3" || !ap2.Index.Incremental {
		t.Fatalf("second append = ref %s incremental %v (want grow@3, true)", ap2.Corpus.Ref, ap2.Index.Incremental)
	}
	if ap2.Index.Epoch <= ap1.Index.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", ap1.Index.Epoch, ap2.Index.Epoch)
	}

	// Both children's whole-corpus indexes are pre-cached, and each is
	// byte-identical (fingerprint) to a from-scratch build over the
	// registered corpus — the snapshot contract, observed at the server.
	for _, ref := range []string{"grow@2", "grow@3"} {
		corpus, info, err := srv.registry.Resolve(ref)
		if err != nil {
			t.Fatal(err)
		}
		ix := cachedIndex(t, srv, itemset.IndexKey(info.ID, "", false))
		want, err := itemset.BuildIndex(corpus.AllView().Transactions())
		if err != nil {
			t.Fatal(err)
		}
		if ix.Fingerprint() != want.Fingerprint() {
			t.Fatalf("%s: cached snapshot fingerprint %s != from-scratch build %s",
				ref, ix.Fingerprint(), want.Fingerprint())
		}
		if ix.N() != corpus.Len() {
			t.Fatalf("%s: snapshot N %d != corpus %d", ref, ix.N(), corpus.Len())
		}
	}

	// The first query needing the child's aggregate index finds it warm:
	// overrep builds only the region slice, and hits the cached aggregate.
	before := srv.indexes.Stats()
	if resp, body := get(t, ts, "/v1/overrep?corpus=grow@3&region=KOR&k=3"); resp.StatusCode != http.StatusOK {
		t.Fatalf("overrep against appended corpus: %d %s", resp.StatusCode, body)
	}
	after := srv.indexes.Stats()
	if after.Builds != before.Builds+1 {
		t.Errorf("overrep built %d indexes (want 1: the region slice only)", after.Builds-before.Builds)
	}
	if after.Hits != before.Hits+1 {
		t.Errorf("overrep recorded %d hits (want 1: the pre-cached aggregate)", after.Hits-before.Hits)
	}

	// The parent versions are untouched and still servable.
	for _, ref := range []string{"grow@1", "grow@2"} {
		if resp, body := get(t, ts, "/v1/mine?corpus="+ref+"&region=ITA&support=0.5"); resp.StatusCode != http.StatusOK {
			t.Fatalf("mine against %s after appends: %d %s", ref, resp.StatusCode, body)
		}
	}

	// Live metrics tell the same story: one seed, two appends.
	_, metrics := get(t, ts, "/metrics")
	for _, line := range []string{
		"cuisinevol_live_appends_total 2",
		"cuisinevol_live_seeds_total 1",
		"cuisinevol_live_appended_tx_total 4",
		"cuisinevol_live_snapshots_total 2",
		"cuisinevol_live_heads 1",
	} {
		if !strings.Contains(string(metrics), line) {
			t.Errorf("metrics missing %q", line)
		}
	}
}

// TestCorpusAppendErrors pins the append endpoint's failure modes.
func TestCorpusAppendErrors(t *testing.T) {
	_, ts := newTestServer(t)
	// Unknown parent.
	if resp := doJSON(t, ts, http.MethodPost, "/v1/corpora/ghost/append", appendJSONL, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("append to unknown corpus: %d, want 404", resp.StatusCode)
	}
	// Syntactically invalid parent reference.
	if resp := doJSON(t, ts, http.MethodPost, "/v1/corpora/-bad-/append", appendJSONL, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("append to invalid ref: %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, ts, http.MethodPost, "/v1/corpora?name=base", uploadJSONL, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d", resp.StatusCode)
	}
	// Unknown format parameter.
	if resp := doJSON(t, ts, http.MethodPost, "/v1/corpora/base/append?format=xml", appendJSONL, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("append with bad format: %d, want 400", resp.StatusCode)
	}
	// Nothing accepted: no new version is minted.
	if resp := doJSON(t, ts, http.MethodPost, "/v1/corpora/base/append", `{"region":"","ingredients":[]}`+"\n", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty append: %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/mine?corpus=base@2&region=ITA"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("failed append minted a version: base@2 resolves")
	}
}

// TestCorpusDeleteInvalidatesIndexes is the cache-coherence regression
// test: deleting a corpus must drop its fingerprint-keyed index entries
// eagerly (not wait for byte-pressure eviction), must never touch other
// corpora's entries, and must leave in-flight snapshots usable — an
// *Index already held by a query keeps mining deterministically.
func TestCorpusDeleteInvalidatesIndexes(t *testing.T) {
	srv, ts := newTestServer(t)

	var up uploadBody
	if resp := doJSON(t, ts, http.MethodPost, "/v1/corpora?name=doomed", uploadJSONL, &up); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d", resp.StatusCode)
	}

	// Build one default-corpus entry and three for the upload (ITA and
	// KOR slices plus the aggregate overrep touches).
	if resp, _ := get(t, ts, "/v1/mine?region=ITA&support=0.3"); resp.StatusCode != http.StatusOK {
		t.Fatal("default mine failed")
	}
	if resp, _ := get(t, ts, "/v1/mine?corpus=doomed&region=ITA&support=0.5"); resp.StatusCode != http.StatusOK {
		t.Fatal("uploaded mine failed")
	}
	if resp, _ := get(t, ts, "/v1/overrep?corpus=doomed&region=KOR&k=3"); resp.StatusCode != http.StatusOK {
		t.Fatal("uploaded overrep failed")
	}
	before := srv.indexes.Stats()
	if before.Entries != 4 {
		t.Fatalf("entries before delete = %d (want 4: default ITA + uploaded ITA/KOR/aggregate)", before.Entries)
	}

	// Pin the aggregate snapshot like an in-flight query would.
	held := cachedIndex(t, srv, itemset.IndexKey(up.Corpus.ID, "", false))
	heldFP := held.Fingerprint()

	var del struct {
		Deleted     corpusRow `json:"deleted"`
		Invalidated int       `json:"invalidated_indexes"`
	}
	if resp := doJSON(t, ts, http.MethodDelete, "/v1/corpora/doomed", "", &del); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if del.Invalidated != 3 {
		t.Fatalf("invalidated %d index entries (want 3)", del.Invalidated)
	}

	after := srv.indexes.Stats()
	if after.Entries != 1 {
		t.Fatalf("entries after delete = %d (want 1: the default corpus's survives)", after.Entries)
	}
	if after.Invalidations != 3 {
		t.Fatalf("invalidation counter = %d (want 3)", after.Invalidations)
	}

	// The default corpus's entry genuinely survived: a new support point
	// against the same view is an index hit, not a rebuild.
	if resp, _ := get(t, ts, "/v1/mine?region=ITA&support=0.35"); resp.StatusCode != http.StatusOK {
		t.Fatal("default mine after delete failed")
	}
	if final := srv.indexes.Stats(); final.Builds != after.Builds {
		t.Errorf("default-corpus index was rebuilt after an unrelated delete: builds %d -> %d",
			after.Builds, final.Builds)
	}

	// The pinned snapshot is untouched by invalidation: same fingerprint,
	// still mines.
	if held.Fingerprint() != heldFP {
		t.Fatal("held index fingerprint changed across invalidation")
	}
	if _, err := itemset.MineIndexed(held, 0.5, itemset.MineOptions{}); err != nil {
		t.Fatalf("held index no longer mines: %v", err)
	}

	if _, body := get(t, ts, "/metrics"); !strings.Contains(string(body), "cuisinevol_index_invalidations_total 3") {
		t.Error("metrics missing the invalidation count")
	}
}

// TestCorpusErrorMapping pins every typed corpusstore failure to its
// HTTP status and JSON error shape (the contract corpora.go documents):
// ErrNotFound→404, ErrBadName/ErrBadRef→400, ErrNameTaken→409,
// ErrTooLarge→413, ErrCorrupt→500 — across the management verbs, the
// append endpoint, and corpus= on the analytics endpoints.
func TestCorpusErrorMapping(t *testing.T) {
	// Standard server, with one corpus registered so ErrNameTaken has
	// content to conflict with.
	_, ts := newTestServer(t)
	if resp := doJSON(t, ts, http.MethodPost, "/v1/corpora?name=claimed", uploadJSONL, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("setup upload: %d", resp.StatusCode)
	}

	// A server whose upload budget is 16 bytes: every real body trips
	// ErrTooLarge in the importer.
	tiny, err := New(Options{Seed: 42, Replicates: 2, Compute: 4,
		Corpus: testCorpus(t), MaxUploadBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	tsTiny := httptest.NewServer(tiny.Handler())
	t.Cleanup(tsTiny.Close)

	// A server whose registry holds a corpus that fails verification on
	// load: garbage bytes stored under a syntactically valid fingerprint
	// with a name binding. Resolving it is ErrCorrupt — server-side data
	// damage, never the client's fault.
	store := corpusstore.NewMemStore(0)
	if err := store.Put(corpusstore.Info{
		ID:      strings.Repeat("ab", 16),
		Name:    "rotten",
		Version: 1,
		Recipes: 1,
		Regions: 1,
	}, []byte("this is not a serialized corpus\n")); err != nil {
		t.Fatal(err)
	}
	reg, err := corpusstore.NewRegistry(store, testCorpus(t).Lexicon())
	if err != nil {
		t.Fatal(err)
	}
	rotten, err := New(Options{Seed: 42, Replicates: 2, Compute: 4,
		Corpus: testCorpus(t), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	tsRotten := httptest.NewServer(rotten.Handler())
	t.Cleanup(tsRotten.Close)

	for _, tc := range []struct {
		name   string
		ts     *httptest.Server
		method string
		path   string
		body   string
		want   int
	}{
		// ErrNotFound → 404 on every verb that resolves a reference.
		{"notfound/delete", ts, http.MethodDelete, "/v1/corpora/ghost", "", http.StatusNotFound},
		{"notfound/append", ts, http.MethodPost, "/v1/corpora/ghost/append", appendJSONL, http.StatusNotFound},
		{"notfound/mine", ts, http.MethodGet, "/v1/mine?corpus=ghost&region=ITA", "", http.StatusNotFound},
		{"notfound/fig3", ts, http.MethodGet, "/v1/fig3?corpus=ghost", "", http.StatusNotFound},
		{"notfound/version", ts, http.MethodGet, "/v1/mine?corpus=claimed@9&region=ITA", "", http.StatusNotFound},
		// ErrBadRef → 400: syntactically invalid references.
		{"badref/mine", ts, http.MethodGet, "/v1/mine?corpus=-bad-&region=ITA", "", http.StatusBadRequest},
		{"badref/overrep", ts, http.MethodGet, "/v1/overrep?corpus=claimed@zero&region=ITA&k=3", "", http.StatusBadRequest},
		{"badref/delete", ts, http.MethodDelete, "/v1/corpora/@@", "", http.StatusBadRequest},
		{"badref/append", ts, http.MethodPost, "/v1/corpora/-bad-/append", appendJSONL, http.StatusBadRequest},
		// ErrBadName → 400: invalid registration names, including the
		// one reserved shape (a name that looks like a fingerprint).
		{"badname/upper", ts, http.MethodPost, "/v1/corpora?name=UPPER", uploadJSONL, http.StatusBadRequest},
		{"badname/hexlike", ts, http.MethodPost, "/v1/corpora?name=" + strings.Repeat("0", 32), uploadJSONL, http.StatusBadRequest},
		// ErrNameTaken → 409: same content under a different name.
		{"nametaken/upload", ts, http.MethodPost, "/v1/corpora?name=other", uploadJSONL, http.StatusConflict},
		// ErrTooLarge → 413: body exceeds the configured upload budget.
		{"toolarge/upload", tsTiny, http.MethodPost, "/v1/corpora?name=big", uploadJSONL, http.StatusRequestEntityTooLarge},
		// ErrCorrupt → 500: stored bytes fail verification on load,
		// surfaced identically through corpus= on analytics endpoints.
		{"corrupt/mine", tsRotten, http.MethodGet, "/v1/mine?corpus=rotten&region=ITA", "", http.StatusInternalServerError},
		{"corrupt/overrep", tsRotten, http.MethodGet, "/v1/overrep?corpus=rotten&region=ITA&k=3", "", http.StatusInternalServerError},
		{"corrupt/byid", tsRotten, http.MethodGet, "/v1/cuisines?corpus=" + strings.Repeat("ab", 16), "", http.StatusInternalServerError},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var e struct {
				Error string `json:"error"`
			}
			resp := doJSON(t, tc.ts, tc.method, tc.path, tc.body, &e)
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: status %d (want %d), error %q", tc.method, tc.path, resp.StatusCode, tc.want, e.Error)
			}
			if e.Error == "" {
				t.Fatalf("%s %s: missing structured error body", tc.method, tc.path)
			}
		})
	}
}
