package server

import (
	"bufio"
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// metricLine matches one sample of the Prometheus text exposition
// format: name{labels} value.
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eEInf]+$`)

func TestMetricsExpositionParses(t *testing.T) {
	_, ts := newTestServer(t)
	// Generate some traffic first: a computation, a cache hit, a 404.
	get(t, ts, "/v1/overrep?region=ITA&k=3")
	get(t, ts, "/v1/overrep?region=ITA&k=3")
	get(t, ts, "/v1/overrep?region=ZZZ")

	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}

	types := map[string]string{}
	samples := map[string]float64{}
	scanner := bufio.NewScanner(bytes.NewReader(body))
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("unparseable sample line: %q", line)
		}
		idx := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[line[:idx]] = v
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}

	for family, kind := range map[string]string{
		"cuisinevol_http_requests_total":             "counter",
		"cuisinevol_http_request_duration_seconds":   "histogram",
		"cuisinevol_cache_hits_total":                "counter",
		"cuisinevol_cache_misses_total":              "counter",
		"cuisinevol_cache_bytes":                     "gauge",
		"cuisinevol_coalesced_requests_total":        "counter",
		"cuisinevol_computations_total":              "counter",
		"cuisinevol_compute_inflight":                "gauge",
		"cuisinevol_index_builds_total":              "counter",
		"cuisinevol_index_hits_total":                "counter",
		"cuisinevol_index_misses_total":              "counter",
		"cuisinevol_index_evictions_total":           "counter",
		"cuisinevol_index_bytes":                     "gauge",
		"cuisinevol_index_entries":                   "gauge",
		"cuisinevol_index_invalidations_total":       "counter",
		"cuisinevol_index_container_array_total":     "counter",
		"cuisinevol_index_container_bitset_total":    "counter",
		"cuisinevol_index_container_run_total":       "counter",
		"cuisinevol_index_bytes_saved_total":         "counter",
		"cuisinevol_live_appends_total":              "counter",
		"cuisinevol_live_appended_tx_total":          "counter",
		"cuisinevol_live_seeds_total":                "counter",
		"cuisinevol_live_snapshots_total":            "counter",
		"cuisinevol_live_heads":                      "gauge",
		"cuisinevol_live_epochs":                     "gauge",
		"cuisinevol_peer_proxied_total":              "counter",
		"cuisinevol_peer_fallback_total":             "counter",
		"cuisinevol_peer_fallback_shed_total":        "counter",
		"cuisinevol_peer_ring_moves_total":           "counter",
		"cuisinevol_peer_snapshot_saves_total":       "counter",
		"cuisinevol_peer_snapshot_loads_total":       "counter",
		"cuisinevol_peer_snapshot_load_errors_total": "counter",
		"cuisinevol_peer_snapshot_entries_total":     "counter",
	} {
		if got := types[family]; got != kind {
			t.Errorf("family %s: TYPE %q (want %q)", family, got, kind)
		}
	}

	if v := samples[`cuisinevol_http_requests_total{endpoint="/v1/overrep",code="200"}`]; v != 2 {
		t.Errorf("overrep 200 count = %v (want 2)", v)
	}
	if v := samples[`cuisinevol_http_requests_total{endpoint="/v1/overrep",code="404"}`]; v != 1 {
		t.Errorf("overrep 404 count = %v (want 1)", v)
	}
	if samples["cuisinevol_cache_hits_total"] < 1 {
		t.Error("no cache hit recorded")
	}
	if samples["cuisinevol_computations_total"] != 1 {
		t.Errorf("computations = %v (want 1)", samples["cuisinevol_computations_total"])
	}
	if total := samples["cuisinevol_index_container_array_total"] +
		samples["cuisinevol_index_container_bitset_total"] +
		samples["cuisinevol_index_container_run_total"]; total < 1 {
		t.Errorf("container totals = %v after index builds (want >= 1)", total)
	}

	// Histogram invariants for the overrep endpoint: buckets cumulative,
	// +Inf equals _count, and the exposition covered all three requests.
	var prev float64
	for _, le := range []string{"0.001", "0.005", "0.025", "0.1", "0.5", "2.5", "10", "60", "300", "+Inf"} {
		key := `cuisinevol_http_request_duration_seconds_bucket{endpoint="/v1/overrep",le="` + le + `"}`
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Fatalf("bucket le=%s not cumulative: %v < %v", le, v, prev)
		}
		prev = v
	}
	if count := samples[`cuisinevol_http_request_duration_seconds_count{endpoint="/v1/overrep"}`]; count != 3 || prev != count {
		t.Errorf("histogram count = %v, +Inf = %v (want 3, equal)", count, prev)
	}
}

// TestIndexSharedAcrossRequests proves the build-once contract at the
// serving layer: two mines over the same view at different supports are
// distinct result-cache entries but share one prebuilt corpus index, so
// the second request records an index hit and no new build.
func TestIndexSharedAcrossRequests(t *testing.T) {
	srv, ts := newTestServer(t)

	if resp, _ := get(t, ts, "/v1/mine?region=ITA&support=0.3"); resp.StatusCode != 200 {
		t.Fatalf("first mine: %d", resp.StatusCode)
	}
	after1 := srv.indexes.Stats()
	if after1.Builds != 1 {
		t.Fatalf("builds after first mine = %d (want 1)", after1.Builds)
	}

	if resp, _ := get(t, ts, "/v1/mine?region=ITA&support=0.4"); resp.StatusCode != 200 {
		t.Fatalf("second mine: %d", resp.StatusCode)
	}
	after2 := srv.indexes.Stats()
	if after2.Builds != after1.Builds {
		t.Errorf("second support rebuilt the index: builds %d -> %d", after1.Builds, after2.Builds)
	}
	if after2.Hits != after1.Hits+1 {
		t.Errorf("hits %d -> %d (want +1)", after1.Hits, after2.Hits)
	}

	// A different view (the overrep handler touches the aggregate index
	// plus the region's) builds new entries without evicting ITA's.
	if resp, _ := get(t, ts, "/v1/overrep?region=ITA&k=3"); resp.StatusCode != 200 {
		t.Fatalf("overrep: %d", resp.StatusCode)
	}
	after3 := srv.indexes.Stats()
	if after3.Builds <= after2.Builds {
		t.Errorf("overrep built no new index: builds %d -> %d", after2.Builds, after3.Builds)
	}
	if after3.Bytes <= 0 || after3.Entries < 2 {
		t.Errorf("cache stats after traffic: bytes=%d entries=%d", after3.Bytes, after3.Entries)
	}
}
