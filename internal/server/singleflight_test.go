package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightCoalescesConcurrentCalls holds the single execution open
// until all 8 callers have joined, then releases it — a deterministic
// proof that concurrent duplicate calls share one execution.
func TestFlightCoalescesConcurrentCalls(t *testing.T) {
	g := newFlightGroup()
	const n = 8
	var executions atomic.Int32
	joined := make(chan struct{}, n)
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([][]byte, n)
	errs := make([]error, n)
	sharedFlags := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			joined <- struct{}{}
			results[i], errs[i], sharedFlags[i] = g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
				executions.Add(1)
				<-release
				return []byte("v"), nil
			})
		}(i)
	}
	// Wait until every goroutine is launched and the leader is inside fn,
	// then let the computation finish.
	for i := 0; i < n; i++ {
		<-joined
	}
	for executions.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("fn executed %d times (want 1)", got)
	}
	leaderCount := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if string(results[i]) != "v" {
			t.Fatalf("caller %d got %q", i, results[i])
		}
		if !sharedFlags[i] {
			leaderCount++
		}
	}
	if leaderCount != 1 {
		t.Fatalf("%d callers report leading the execution (want 1)", leaderCount)
	}
}

// TestFlightCancelPropagatesWhenAllWaitersLeave proves the cancellation
// path: the computation's context must be cancelled exactly when the
// last interested caller gives up.
func TestFlightCancelPropagatesWhenAllWaitersLeave(t *testing.T) {
	g := newFlightGroup()
	computeCancelled := make(chan struct{})
	started := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx, "k", func(cctx context.Context) ([]byte, error) {
			close(started)
			<-cctx.Done()
			close(computeCancelled)
			return nil, cctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller error = %v (want context.Canceled)", err)
	}
	select {
	case <-computeCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("compute context not cancelled after last waiter left")
	}
}

// TestFlightComputationSurvivesOneWaiterLeaving: with two waiters, one
// cancelling must not kill the computation the other still wants.
func TestFlightComputationSurvivesOneWaiterLeaving(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	started := make(chan struct{})

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	doneA := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctxA, "k", func(cctx context.Context) ([]byte, error) {
			close(started)
			select {
			case <-release:
				return []byte("v"), nil
			case <-cctx.Done():
				return nil, cctx.Err()
			}
		})
		doneA <- err
	}()
	<-started

	doneB := make(chan struct{})
	var valB []byte
	var errB error
	go func() {
		valB, errB, _ = g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
			t.Error("second caller must join, not recompute")
			return nil, nil
		})
		close(doneB)
	}()
	// Wait until B has actually joined (waiter count 2), then abandon A;
	// B must still get the value.
	for {
		g.mu.Lock()
		waiters := 0
		if c := g.m["k"]; c != nil {
			waiters = c.waiters
		}
		g.mu.Unlock()
		if waiters == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancelA()
	<-doneA
	close(release)
	<-doneB
	if errB != nil || string(valB) != "v" {
		t.Fatalf("surviving waiter got (%q, %v)", valB, errB)
	}
}
