package server

import (
	"context"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"cuisinevol/internal/cuisine"
	"cuisinevol/internal/evomodel"
	"cuisinevol/internal/experiment"
	"cuisinevol/internal/ingredient"
	"cuisinevol/internal/itemset"
	"cuisinevol/internal/overrep"
	"cuisinevol/internal/rankfreq"
)

// routes registers every endpoint. The analytics endpoints are GET-only
// and flow through serveComputed (cache → coalesce → compute); /healthz
// and /metrics are served directly; /v1/corpora (corpora.go) carries
// the corpus-management verbs.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	register := func(path string, h http.HandlerFunc) {
		s.mux.Handle("GET "+path, s.instrument(path, h))
	}
	register("/healthz", s.handleHealthz)
	register("/metrics", s.handleMetrics)
	register("/v1/cuisines", s.handleCuisines)
	register("/v1/table1", s.handleTable1)
	register("/v1/fig1", s.handleFig1)
	register("/v1/fig2", s.handleFig2)
	register("/v1/fig3", s.handleFig3)
	register("/v1/fig4", s.handleFig4)
	register("/v1/mine", s.handleMine)
	register("/v1/overrep", s.handleOverrep)
	register("/v1/evolve", s.handleEvolve)
	s.mux.Handle("POST /v1/corpora", s.instrument("/v1/corpora", s.handleCorpusUpload))
	s.mux.Handle("GET /v1/corpora", s.instrument("/v1/corpora", s.handleCorpusList))
	s.mux.Handle("DELETE /v1/corpora/{id}", s.instrument("/v1/corpora/{id}", s.handleCorpusDelete))
	s.mux.Handle("POST /v1/corpora/{id}/append", s.instrument("/v1/corpora/{id}/append", s.handleCorpusAppend))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := map[string]any{
		"status":  "ok",
		"corpus":  s.fingerprint,
		"recipes": s.corpus.Len(),
		"corpora": s.registry.Stats().StoreEntries,
	}
	if s.peers != nil {
		state := s.peers.state.Load()
		doc["node"] = s.peers.self
		doc["peers"] = state.ring.Members()
	}
	body, _ := marshalDeterministic(doc)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w, s.cache, s.indexes, s.registry, s.live)
}

// cuisineInfo is one row of /v1/cuisines.
type cuisineInfo struct {
	Code              string `json:"code"`
	Name              string `json:"name"`
	Recipes           int    `json:"recipes"`
	UniqueIngredients int    `json:"unique_ingredients"`
}

func (s *Server) handleCuisines(w http.ResponseWriter, r *http.Request) {
	sel, err := s.selectCorpus(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveComputed(w, r, sel.fingerprint, "/v1/cuisines", "", func(ctx context.Context) (any, error) {
		// Paper cuisines come first in Table I order (all 25 for the
		// default corpus, the non-empty ones for an uploaded corpus);
		// region codes outside the paper's set follow, sorted, with the
		// code standing in for the display name.
		out := make([]cuisineInfo, 0, cuisine.Count)
		known := make(map[string]bool, cuisine.Count)
		for _, region := range cuisine.All() {
			known[region.Code] = true
			view := sel.corpus.Region(region.Code)
			if view.Len() == 0 && !sel.def {
				continue
			}
			out = append(out, cuisineInfo{
				Code:              region.Code,
				Name:              region.Name,
				Recipes:           view.Len(),
				UniqueIngredients: view.UniqueIngredients(),
			})
		}
		var extra []string
		for _, code := range sel.corpus.Regions() {
			if !known[code] {
				extra = append(extra, code)
			}
		}
		sort.Strings(extra)
		for _, code := range extra {
			view := sel.corpus.Region(code)
			out = append(out, cuisineInfo{
				Code:              code,
				Name:              code,
				Recipes:           view.Len(),
				UniqueIngredients: view.UniqueIngredients(),
			})
		}
		return map[string]any{"cuisines": out}, nil
	})
}

// table1Row is one row of /v1/table1.
type table1Row struct {
	Code               string   `json:"code"`
	Name               string   `json:"name"`
	Recipes            int      `json:"recipes"`
	UniqueIngredients  int      `json:"unique_ingredients"`
	TopOverrepresented []string `json:"top_overrepresented"`
	PaperTop           []string `json:"paper_top"`
	Matches            int      `json:"matches"`
}

func (s *Server) handleTable1(w http.ResponseWriter, r *http.Request) {
	sel, err := s.selectCorpus(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveComputed(w, r, sel.fingerprint, "/v1/table1", "", func(ctx context.Context) (any, error) {
		res, err := experiment.RunTableI(s.config(sel, s.opts.Replicates))
		if err != nil {
			return nil, err
		}
		rows := make([]table1Row, len(res.Rows))
		for i, row := range res.Rows {
			rows[i] = table1Row{
				Code:               row.Code,
				Name:               row.Name,
				Recipes:            row.Recipes,
				UniqueIngredients:  row.UniqueIngredients,
				TopOverrepresented: row.TopOverrepresented,
				PaperTop:           row.PaperTop,
				Matches:            row.Matches,
			}
		}
		return map[string]any{
			"rows":            rows,
			"total_recipes":   res.TotalRecipes,
			"avg_recipes":     res.AvgRecipes,
			"avg_ingredients": res.AvgIngredients,
		}, nil
	})
}

func (s *Server) handleFig1(w http.ResponseWriter, r *http.Request) {
	sel, err := s.selectCorpus(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveComputed(w, r, sel.fingerprint, "/v1/fig1", "", func(ctx context.Context) (any, error) {
		return experiment.RunFig1(s.config(sel, s.opts.Replicates))
	})
}

func (s *Server) handleFig2(w http.ResponseWriter, r *http.Request) {
	sel, err := s.selectCorpus(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.serveComputed(w, r, sel.fingerprint, "/v1/fig2", "", func(ctx context.Context) (any, error) {
		res, err := experiment.RunFig2(s.config(sel, s.opts.Replicates))
		if err != nil {
			return nil, err
		}
		leading := make([]string, len(res.Leading))
		for i, c := range res.Leading {
			leading[i] = c.String()
		}
		boxes := make(map[string]any, ingredient.NumCategories)
		for c, b := range res.Boxes {
			boxes[ingredient.Category(c).String()] = map[string]float64{
				"whisker_low": b.WhiskLo, "q1": b.Q1, "median": b.Med, "q3": b.Q3, "whisker_high": b.WhiskHi,
			}
		}
		return map[string]any{"means": res.Means, "boxes": boxes, "leading": leading}, nil
	})
}

// figPanel is the serialized form of one Fig 3 panel.
type figPanel struct {
	MeanMAE      float64              `json:"mean_mae"`
	MostDistinct []string             `json:"most_distinct"`
	Dists        map[string][]float64 `json:"dists"`
}

func toPanel(p experiment.Fig3Panel) figPanel {
	out := figPanel{MeanMAE: p.MeanMAE, MostDistinct: p.MostDistinct, Dists: make(map[string][]float64, len(p.Dists))}
	for _, d := range p.Dists {
		out.Dists[d.Label] = d.Freqs
	}
	return out
}

func (s *Server) handleFig3(w http.ResponseWriter, r *http.Request) {
	sel, err := s.selectCorpus(r)
	support, serr := parseFloat(r, "support", s.opts.MinSupport, 0, 1)
	if err = firstErr(err, serr); err != nil {
		s.writeError(w, err)
		return
	}
	canon := canonicalParams("support", support)
	s.serveComputed(w, r, sel.fingerprint, "/v1/fig3", canon, func(ctx context.Context) (any, error) {
		cfg := s.config(sel, s.opts.Replicates)
		cfg.MinSupport = support
		res, err := experiment.RunFig3Ctx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return map[string]figPanel{
			"ingredients": toPanel(res.Ingredients),
			"categories":  toPanel(res.Categories),
		}, nil
	})
}

// fig4Row is one cuisine's model comparison in /v1/fig4.
type fig4Row struct {
	Region string             `json:"region"`
	MAE    map[string]float64 `json:"mae"`
	Best   string             `json:"best"`
}

func (s *Server) handleFig4(w http.ResponseWriter, r *http.Request) {
	sel, err := s.selectCorpus(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	replicates, err := parseInt(r, "replicates", s.opts.Replicates, 1, 10000)
	categories, cerr := parseBool(r, "categories", false)
	regions, rerr := parseRegions(r, sel.corpus.Regions())
	dists, derr := parseBool(r, "dists", false)
	if err = firstErr(err, cerr, rerr, derr); err != nil {
		s.writeError(w, err)
		return
	}
	canon := canonicalParams(
		"categories", categories,
		"dists", dists,
		"regions", strings.Join(regions, ","),
		"replicates", replicates,
	)
	s.serveComputed(w, r, sel.fingerprint, "/v1/fig4", canon, func(ctx context.Context) (any, error) {
		cfg := s.config(sel, replicates)
		res, err := experiment.RunFig4Ctx(ctx, cfg, experiment.Fig4Options{
			Categories: categories,
			Regions:    regions,
		})
		if err != nil {
			return nil, err
		}
		rows := make([]fig4Row, len(res.Rows))
		for i, row := range res.Rows {
			mae := make(map[string]float64, len(row.MAE))
			for kind, v := range row.MAE {
				mae[kind.String()] = v
			}
			rows[i] = fig4Row{Region: row.Region, MAE: mae, Best: row.Best.String()}
		}
		best := make(map[string]int, len(res.BestCounts))
		for kind, n := range res.BestCounts {
			best[kind.String()] = n
		}
		out := map[string]any{
			"categories":            res.Categories,
			"rows":                  rows,
			"best_counts":           best,
			"null_worst_everywhere": res.NullWorstEverywhere,
			"replicates":            replicates,
		}
		if dists {
			empirical := make(map[string][]float64, len(res.Empirical))
			for code, d := range res.Empirical {
				empirical[code] = d.Freqs
			}
			models := make(map[string]map[string][]float64, len(res.Models))
			for code, byKind := range res.Models {
				m := make(map[string][]float64, len(byKind))
				for kind, d := range byKind {
					m[kind.String()] = d.Freqs
				}
				models[code] = m
			}
			out["empirical"] = empirical
			out["models"] = models
		}
		return out, nil
	})
}

// minedSet is one frequent combination in /v1/mine.
type minedSet struct {
	Items   []string `json:"items"`
	Count   int      `json:"count"`
	Support float64  `json:"support"`
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	sel, err := s.selectCorpus(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	region, err := parseRegion(r, sel)
	support, serr := parseFloat(r, "support", s.opts.MinSupport, 0, 1)
	top, terr := parseInt(r, "top", 25, 1, 100000)
	categories, cerr := parseBool(r, "categories", false)
	kernel, kerr := parseKernel(r)
	if err = firstErr(err, serr, terr, cerr, kerr); err != nil {
		s.writeError(w, err)
		return
	}
	// The kernel is part of the cache key even though every kernel
	// returns byte-identical bodies: the key addresses the computation
	// that was requested, and collapsing kernels in the key would make
	// an explicit kernel=eclat request silently serve an fpgrowth
	// entry — correct bytes, wrong observable (and vice versa). The
	// handler tests pin both properties: identical bodies, distinct
	// keys.
	canon := canonicalParams("categories", categories, "kernel", kernel.String(), "region", region, "support", support, "top", top)
	s.serveComputed(w, r, sel.fingerprint, "/v1/mine", canon, func(ctx context.Context) (any, error) {
		ix, err := s.viewIndex(sel, region, categories)
		if err != nil {
			return nil, err
		}
		res, err := itemset.MineIndexed(ix, support, itemset.MineOptions{Kernel: kernel, Workers: s.mineWorkers()})
		if err != nil {
			return nil, err
		}
		lex := sel.corpus.Lexicon()
		sets := make([]minedSet, 0, min(top, len(res.Sets)))
		for i, set := range res.Sets {
			if i >= top {
				break
			}
			names := make([]string, len(set.Items))
			for j, id := range set.Items {
				if categories {
					names[j] = ingredient.Category(id).String()
				} else {
					names[j] = lex.Name(id)
				}
			}
			sets = append(sets, minedSet{Items: names, Count: set.Count, Support: set.Support(res.N)})
		}
		return map[string]any{"region": region, "total": len(res.Sets), "sets": sets}, nil
	})
}

// overrepRow is one ranked ingredient in /v1/overrep.
type overrepRow struct {
	Ingredient string  `json:"ingredient"`
	Category   string  `json:"category"`
	Score      float64 `json:"score"`
}

func (s *Server) handleOverrep(w http.ResponseWriter, r *http.Request) {
	sel, err := s.selectCorpus(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	region, err := parseRegion(r, sel)
	k, kerr := parseInt(r, "k", 10, 1, 1000)
	if err = firstErr(err, kerr); err != nil {
		s.writeError(w, err)
		return
	}
	canon := canonicalParams("k", k, "region", region)
	s.serveComputed(w, r, sel.fingerprint, "/v1/overrep", canon, func(ctx context.Context) (any, error) {
		// Both document-frequency tables come off shared indexes: the
		// whole-corpus one carries Eq 1's global counts, the region one
		// its numerator — no per-request corpus rescan.
		allIx, err := s.viewIndex(sel, "", false)
		if err != nil {
			return nil, err
		}
		regionIx, err := s.viewIndex(sel, region, false)
		if err != nil {
			return nil, err
		}
		topK, err := overrep.NewFromIndex(sel.corpus, allIx).TopKFromIndex(region, regionIx, k)
		if err != nil {
			return nil, err
		}
		lex := sel.corpus.Lexicon()
		rows := make([]overrepRow, len(topK))
		for i, res := range topK {
			rows[i] = overrepRow{
				Ingredient: lex.Name(res.ID),
				Category:   lex.CategoryOf(res.ID).String(),
				Score:      res.Score,
			}
		}
		return map[string]any{"region": region, "ingredients": rows}, nil
	})
}

func (s *Server) handleEvolve(w http.ResponseWriter, r *http.Request) {
	sel, err := s.selectCorpus(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	region, err := parseRegion(r, sel)
	model := r.URL.Query().Get("model")
	if model == "" {
		model = "CM-R"
	}
	kind, merr := parseModelKind(model)
	replicates, rerr := parseInt(r, "replicates", s.opts.Replicates, 1, 10000)
	support, serr := parseFloat(r, "support", s.opts.MinSupport, 0, 1)
	if err = firstErr(err, merr, rerr, serr); err != nil {
		s.writeError(w, err)
		return
	}
	canon := canonicalParams("model", kind.String(), "region", region, "replicates", replicates, "support", support)
	s.serveComputed(w, r, sel.fingerprint, "/v1/evolve", canon, func(ctx context.Context) (any, error) {
		view := sel.corpus.Region(region)
		ix, err := s.viewIndex(sel, region, false)
		if err != nil {
			return nil, err
		}
		empirical, err := itemset.MineIndexed(ix, support, itemset.MineOptions{})
		if err != nil {
			return nil, err
		}
		emp := rankfreq.FromResult(region, empirical)
		dist, err := evomodel.RunEnsembleCtx(ctx, evomodel.EnsembleConfig{
			Params:     evomodel.ParamsForView(view, kind, s.opts.Seed),
			Replicates: replicates,
			MinSupport: support,
			Workers:    s.opts.Workers,
		}, sel.corpus.Lexicon())
		if err != nil {
			return nil, err
		}
		mae, err := rankfreq.PaperMAE(emp, dist)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"region":     region,
			"model":      kind.String(),
			"replicates": replicates,
			"mae":        mae,
			"empirical":  emp.Freqs,
			"modeled":    dist.Freqs,
		}, nil
	})
}

// --- parameter parsing -------------------------------------------------

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func parseFloat(r *http.Request, name string, def, lo, hi float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, badRequest("invalid %s %q: %v", name, raw, err)
	}
	if v <= lo || v > hi {
		return 0, badRequest("%s must be in (%g, %g], got %g", name, lo, hi, v)
	}
	return v, nil
}

func parseInt(r *http.Request, name string, def, lo, hi int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("invalid %s %q: %v", name, raw, err)
	}
	if v < lo || v > hi {
		return 0, badRequest("%s must be in [%d, %d], got %d", name, lo, hi, v)
	}
	return v, nil
}

func parseBool(r *http.Request, name string, def bool) (bool, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, badRequest("invalid %s %q: %v", name, raw, err)
	}
	return v, nil
}

// parseRegion reads and validates the region parameter against the
// selected corpus; a missing region is a 400, an unknown cuisine a 404
// — the resource (that cuisine's recipes) does not exist.
func parseRegion(r *http.Request, sel corpusSel) (string, error) {
	code := strings.ToUpper(strings.TrimSpace(r.URL.Query().Get("region")))
	if code == "" {
		return "", badRequest("missing required parameter region")
	}
	if sel.corpus.Region(code).Len() == 0 {
		return "", notFound("unknown cuisine %q", code)
	}
	return code, nil
}

// parseKernel reads the mining-kernel parameter; the default is
// adaptive selection.
func parseKernel(r *http.Request) (itemset.Kernel, error) {
	raw := r.URL.Query().Get("kernel")
	k, err := itemset.ParseKernel(raw)
	if err != nil {
		return 0, badRequest("invalid kernel %q (use auto, fpgrowth, eclat or apriori)", raw)
	}
	return k, nil
}

// mineWorkers resolves the worker budget a single /v1/mine computation
// may fan its Eclat prefix partitions over (the Workers option, or
// GOMAXPROCS when unset — the same resolution internal/sched applies).
func (s *Server) mineWorkers() int {
	if s.opts.Workers > 0 {
		return s.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parseModelKind maps a model name to its evomodel.Kind.
func parseModelKind(s string) (evomodel.Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "CM-R", "CMR", "RANDOM":
		return evomodel.CMRandom, nil
	case "CM-C", "CMC", "CATEGORY":
		return evomodel.CMCategory, nil
	case "CM-M", "CMM", "MIXTURE":
		return evomodel.CMMixture, nil
	case "NM", "NULL":
		return evomodel.NullModel, nil
	}
	return 0, badRequest("unknown model %q (use CM-R, CM-C, CM-M or NM)", s)
}

// parseRegions reads the comma-separated regions parameter, defaulting
// to every cuisine in the paper's Table I order, validating each code
// against the corpus.
func parseRegions(r *http.Request, known []string) ([]string, error) {
	raw := r.URL.Query().Get("regions")
	if raw == "" {
		return nil, nil // RunFig4 defaults to all 25
	}
	knownSet := make(map[string]bool, len(known))
	for _, code := range known {
		knownSet[code] = true
	}
	parts := strings.Split(raw, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		code := strings.ToUpper(strings.TrimSpace(p))
		if code == "" {
			continue
		}
		if !knownSet[code] {
			return nil, notFound("unknown cuisine %q", code)
		}
		out = append(out, code)
	}
	if len(out) == 0 {
		return nil, badRequest("regions parameter is empty")
	}
	sort.Strings(out)
	return out, nil
}
