package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"cuisinevol/internal/recipe"
	"cuisinevol/internal/synth"
)

var (
	corpusOnce   sync.Once
	sharedCorpus *recipe.Corpus
	corpusErr    error
)

// testCorpus generates one scaled-down corpus shared by every test;
// servers are cheap to build on top of it, so each test gets a fresh
// Server (fresh cache, fresh counters) without re-paying generation.
func testCorpus(t *testing.T) *recipe.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		gen := synth.DefaultConfig(42)
		gen.RecipeScale = 0.05
		sharedCorpus, corpusErr = synth.Generate(gen)
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return sharedCorpus
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Options{
		Seed:       42,
		Replicates: 2,
		Compute:    4,
		Corpus:     testCorpus(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestEndpointsRespond(t *testing.T) {
	_, ts := newTestServer(t)
	paths := []string{
		"/healthz",
		"/v1/cuisines",
		"/v1/table1",
		"/v1/fig1",
		"/v1/fig2",
		"/v1/fig3",
		"/v1/fig4?regions=ITA,KOR&replicates=2",
		"/v1/mine?region=ITA",
		"/v1/overrep?region=ITA&k=5",
		"/v1/evolve?region=ITA&model=NM&replicates=2",
	}
	for _, path := range paths {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, body %s", path, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Fatalf("GET %s: content type %q", path, ct)
		}
		var v any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v", path, err)
		}
	}
}

func TestBadParamsAre400(t *testing.T) {
	_, ts := newTestServer(t)
	paths := []string{
		"/v1/fig3?support=abc",
		"/v1/fig3?support=2",
		"/v1/fig3?support=0",
		"/v1/fig4?replicates=0",
		"/v1/fig4?replicates=xyz",
		"/v1/fig4?categories=maybe",
		"/v1/fig4?regions=,",
		"/v1/mine",                         // missing region
		"/v1/mine?region=ITA&top=0",        // below range
		"/v1/mine?region=ITA&support=1.5",  // above range
		"/v1/overrep?region=ITA&k=100000",  // above range
		"/v1/evolve?region=ITA&model=FOO",  // unknown model
		"/v1/evolve?region=ITA&support=-1", // negative support
	}
	for _, path := range paths {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d (want 400), body %s", path, resp.StatusCode, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Fatalf("GET %s: error body %s", path, body)
		}
	}
}

func TestUnknownCuisineIs404(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{
		"/v1/mine?region=ZZZ",
		"/v1/overrep?region=ZZZ",
		"/v1/evolve?region=ZZZ",
		"/v1/fig4?regions=ITA,ZZZ",
	} {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d (want 404), body %s", path, resp.StatusCode, body)
		}
	}
}

func TestUnknownPathAndMethod(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := get(t, ts, "/v1/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d", resp.StatusCode)
	}
	post, err := ts.Client().Post(ts.URL+"/v1/table1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d (want 405)", post.StatusCode)
	}
}

func TestSecondRequestServedFromCache(t *testing.T) {
	srv, ts := newTestServer(t)
	const path = "/v1/overrep?region=ITA&k=7"
	resp1, body1 := get(t, ts, path)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d", resp1.StatusCode)
	}
	if got := resp1.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("first request X-Cache = %q", got)
	}
	before := srv.Computations()
	resp2, body2 := get(t, ts, path)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("second request X-Cache = %q", got)
	}
	if srv.Computations() != before {
		t.Fatalf("compute counter advanced on a cached request: %d -> %d", before, srv.Computations())
	}
	if string(body1) != string(body2) {
		t.Fatal("cached body differs from computed body")
	}
}

func TestParameterSpellingsShareCacheEntry(t *testing.T) {
	srv, ts := newTestServer(t)
	// 0.05, 0.050 and 5e-2 canonicalize identically; only the first
	// spelling may compute.
	get(t, ts, "/v1/mine?region=ITA&support=0.05&top=10")
	before := srv.Computations()
	for _, path := range []string{
		"/v1/mine?region=ITA&support=0.050&top=10",
		"/v1/mine?region=ita&top=10&support=5e-2",
	} {
		resp, _ := get(t, ts, path)
		if got := resp.Header.Get("X-Cache"); got != "HIT" {
			t.Fatalf("GET %s: X-Cache = %q (want HIT)", path, got)
		}
	}
	if srv.Computations() != before {
		t.Fatal("equivalent parameter spellings recomputed")
	}
}

func TestETagConditionalRequest(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := get(t, ts, "/v1/cuisines")
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on response")
	}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/cuisines", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional request: status %d (want 304)", resp2.StatusCode)
	}
}

// TestEightWayCoalescing fires 8 concurrent identical Fig-4 requests at
// a fresh server and asserts exactly one underlying computation ran:
// overlapping requests coalesce onto one execution and stragglers hit
// the cache, so the ensemble is computed once no matter how the eight
// interleave.
func TestEightWayCoalescing(t *testing.T) {
	srv, ts := newTestServer(t)
	const path = "/v1/fig4?regions=ITA&replicates=2"
	const n = 8
	var (
		start  sync.WaitGroup
		finish sync.WaitGroup
		mu     sync.Mutex
		bodies []string
		errs   []error
	)
	start.Add(1)
	for i := 0; i < n; i++ {
		finish.Add(1)
		go func() {
			defer finish.Done()
			start.Wait()
			resp, err := ts.Client().Get(ts.URL + path)
			if err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
			}
			bodies = append(bodies, string(body))
		}()
	}
	start.Done()
	finish.Wait()
	if len(errs) > 0 {
		t.Fatalf("request errors: %v", errs)
	}
	if got := srv.Computations(); got != 1 {
		t.Fatalf("8 concurrent identical requests cost %d computations (want exactly 1)", got)
	}
	for i := 1; i < len(bodies); i++ {
		if bodies[i] != bodies[0] {
			t.Fatal("coalesced responses differ")
		}
	}
}

func TestHealthz(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h struct {
		Status  string `json:"status"`
		Corpus  string `json:"corpus"`
		Recipes int    `json:"recipes"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Corpus != srv.Fingerprint() || h.Recipes != srv.corpus.Len() {
		t.Fatalf("healthz body: %s", body)
	}
}
