package server

import (
	"strings"
	"testing"
)

func TestCachePutGet(t *testing.T) {
	c := newResultCache(1024)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	v, ok := c.Get("a")
	if !ok || string(v) != "alpha" {
		t.Fatalf("got (%q, %v)", v, ok)
	}
	hits, misses, _, used, entries := c.Stats()
	if hits != 1 || misses != 1 || used != 5 || entries != 1 {
		t.Fatalf("stats: hits=%d misses=%d used=%d entries=%d", hits, misses, used, entries)
	}
}

func TestCacheEvictsLRUUnderBudget(t *testing.T) {
	c := newResultCache(10)
	c.Put("a", []byte("aaaa")) // 4 bytes
	c.Put("b", []byte("bbbb")) // 8 bytes total
	c.Get("a")                 // a is now most recently used
	c.Put("c", []byte("cccc")) // 12 > 10: evict LRU (b)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("%s should have survived", key)
		}
	}
	_, _, evictions, used, _ := c.Stats()
	if evictions != 1 || used != 8 {
		t.Fatalf("evictions=%d used=%d", evictions, used)
	}
}

func TestCacheRejectsOversizedBody(t *testing.T) {
	c := newResultCache(4)
	c.Put("big", []byte("too large"))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized body cached")
	}
	_, _, _, used, entries := c.Stats()
	if used != 0 || entries != 0 {
		t.Fatalf("used=%d entries=%d", used, entries)
	}
}

func TestCacheZeroBudgetDisables(t *testing.T) {
	c := newResultCache(0)
	c.Put("a", []byte("x"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-budget cache stored an entry")
	}
}

func TestResultKeySeparatesComponents(t *testing.T) {
	// The key must be injective over its three components: moving bytes
	// across the component boundary must change the hash.
	a := resultKey("fp", "/v1/mine", "region=ITA")
	b := resultKey("fp", "/v1/mineregion=ITA", "")
	c := resultKey("fp/v1/mine", "", "region=ITA")
	if a == b || a == c || b == c {
		t.Fatal("component boundaries not separated in the key")
	}
	if len(a) != 64 || strings.ToLower(a) != a {
		t.Fatalf("key %q is not lowercase hex sha256", a)
	}
	if a != resultKey("fp", "/v1/mine", "region=ITA") {
		t.Fatal("key not deterministic")
	}
}
