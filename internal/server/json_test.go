package server

import (
	"math"
	"strings"
	"testing"
)

func TestMarshalDeterministicSortsMapKeys(t *testing.T) {
	v := map[string]int{"zebra": 1, "apple": 2, "mango": 3}
	b, err := marshalDeterministic(v)
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	if got != "{\"apple\":2,\"mango\":3,\"zebra\":1}\n" {
		t.Fatalf("marshal = %q", got)
	}
}

func TestMarshalDeterministicNoHTMLEscape(t *testing.T) {
	b, err := marshalDeterministic(map[string]string{"q": "a<b&c>d"})
	if err != nil {
		t.Fatal(err)
	}
	if s := string(b); strings.Contains(s, "\\u003c") || !strings.Contains(s, "a<b&c>d") {
		t.Fatalf("HTML-escaped output: %q", s)
	}
}

func TestMarshalDeterministicTrailingNewline(t *testing.T) {
	b, err := marshalDeterministic([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := string(b); !strings.HasSuffix(s, "\n") || strings.Count(s, "\n") != 1 {
		t.Fatalf("want exactly one trailing newline, got %q", s)
	}
}

func TestMarshalDeterministicRepeatable(t *testing.T) {
	v := map[string]any{
		"floats": []float64{0.1, 1e-9, 123456.789},
		"nested": map[string]any{"b": true, "a": nil},
	}
	first, err := marshalDeterministic(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		again, err := marshalDeterministic(v)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("iteration %d: output differs:\n%s\nvs\n%s", i, first, again)
		}
	}
}

func TestMarshalDeterministicRejectsNaN(t *testing.T) {
	if _, err := marshalDeterministic(map[string]float64{"x": math.NaN()}); err == nil {
		t.Fatal("NaN marshalled without error")
	}
}
