package server

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent calls with the same key into one
// execution: the first caller computes, later callers wait for its
// result. Unlike x/sync/singleflight (which the repo deliberately does
// not depend on), the computation runs under its own context that is
// cancelled only when *every* waiter has abandoned the request — N
// identical Fig-4 requests cost one ensemble run, and that run keeps
// going as long as at least one client still wants the answer.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight computation and its waiter refcount.
type flightCall struct {
	done    chan struct{}
	val     []byte
	err     error
	waiters int
	cancel  context.CancelFunc
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// Do returns the result of fn for key, coalescing concurrent duplicate
// calls. shared reports whether this caller joined an execution started
// by another. If ctx is cancelled while waiting, Do returns ctx.Err()
// immediately; the underlying computation is cancelled only once no
// waiters remain.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return c.wait(ctx, g)
	}
	// The compute context is detached from the initiating request: the
	// computation outlives any single waiter and dies with the last one.
	cctx, cancel := context.WithCancel(context.Background())
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.m[key] = c
	g.mu.Unlock()

	go func() {
		v, e := fn(cctx)
		g.mu.Lock()
		c.val, c.err = v, e
		delete(g.m, key)
		g.mu.Unlock()
		cancel()
		close(c.done)
	}()
	val, err, _ = c.wait(ctx, g)
	return val, err, false
}

// wait blocks until the call completes or ctx is cancelled, maintaining
// the waiter refcount.
func (c *flightCall) wait(ctx context.Context, g *flightGroup) ([]byte, error, bool) {
	select {
	case <-c.done:
		return c.val, c.err, true
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		abandoned := c.waiters == 0
		g.mu.Unlock()
		if abandoned {
			c.cancel()
		}
		return nil, ctx.Err(), true
	}
}
