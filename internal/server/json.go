package server

import (
	"bytes"
	"encoding/json"
)

// marshalDeterministic renders v as canonical JSON: encoding/json
// already sorts map keys and prints floats in their shortest
// round-trip form, and struct fields serialize in declaration order —
// so for the deterministic values our seed-stable pipelines produce,
// the rendered bytes are identical across runs and across processes.
// HTML escaping is disabled (bodies are data, not markup) and a single
// trailing newline is kept, matching what the determinism tests and
// cache keys assume.
func marshalDeterministic(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
