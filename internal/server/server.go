// Package server is the HTTP serving layer: a JSON API over every
// analysis pipeline, built for the traffic shape interactive culinary
// analytics actually sees — a fixed corpus queried repeatedly with a
// small set of popular parameterizations. Three mechanisms carry the
// load (DESIGN.md §8):
//
//   - a content-addressed result cache keyed by (corpus fingerprint,
//     endpoint, canonicalized params) with LRU byte-budget eviction —
//     identical requests are served without recomputation and without
//     any invalidation logic, because the key *is* the content;
//   - singleflight coalescing — N concurrent identical requests cost
//     one computation;
//   - a bounded-admission compute pool — at most Compute pipeline
//     computations run at once, each fanning out through internal/sched
//     under the Workers budget, while cache hits bypass the gate
//     entirely; at most MaxQueue more may wait, and arrivals beyond
//     that are shed immediately with 503 + Retry-After (DESIGN.md §9).
//
// Every computed request runs under a per-endpoint deadline (Timeout);
// budget exhaustion is a structured 504, distinct from the 499 a
// client disconnect produces. Request contexts flow down into the
// replicate loops, so abandoned requests stop burning CPU; /metrics
// exposes the whole story — including shed and timeout counts — in
// Prometheus text format with no external dependencies. A seeded,
// fully deterministic fault-injection layer (chaos.go) lets the tests
// drive all of these failure paths without wall-clock sleeps.
//
// With Options.Peers configured the server joins a multi-node tier
// (peer.go, internal/peering, DESIGN.md §15): the result-cache keyspace
// is consistent-hash partitioned across the peer set, misses for
// remotely-owned keys are proxied to their owner (cross-node
// singleflight) and fill the local cache on the way back, and the
// result cache snapshots to disk so a restarted node comes up warm.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"cuisinevol/internal/corpusstore"
	"cuisinevol/internal/experiment"
	"cuisinevol/internal/ingredient"
	"cuisinevol/internal/itemset"
	"cuisinevol/internal/peering"
	"cuisinevol/internal/recipe"
)

// Options configures the server.
type Options struct {
	// Seed, RecipeScale, MinSupport, Replicates and Workers mirror the
	// experiment.Config knobs and set the defaults for every request.
	Seed        uint64
	RecipeScale float64
	MinSupport  float64
	Replicates  int
	Workers     int
	// Compute bounds concurrent pipeline computations (the semaphore);
	// <= 0 means 2.
	Compute int
	// CacheBytes is the result-cache budget; <= 0 means 64 MiB.
	CacheBytes int64
	// IndexBytes is the corpus-index cache budget — the retained bytes
	// of prebuilt itemset.Index values shared by the mine, overrep,
	// evolve and table1 paths; <= 0 means 64 MiB.
	IndexBytes int64
	// Corpus, when non-nil, is served as the default corpus instead of
	// a generated one.
	Corpus *recipe.Corpus
	// Registry, when non-nil, backs the multi-corpus endpoints
	// (/v1/corpora and the corpus= parameter); nil selects a fresh
	// in-memory registry, so uploads work out of the box but do not
	// survive a restart. Wire a filesystem-backed registry (see
	// corpusstore.OpenFS) for durability.
	Registry *corpusstore.Registry
	// MaxUploadBytes bounds the total input bytes a corpus upload or
	// append may stream (ErrTooLarge → 413 beyond it); <= 0 selects the
	// corpusstore default (256 MiB).
	MaxUploadBytes int64
	// Timeout is the per-request compute deadline for the heavy pipeline
	// endpoints; lighter endpoints get a fraction of it (endpointBudget).
	// 0 selects the 2-minute default; negative disables deadlines.
	Timeout time.Duration
	// MaxQueue caps how many computations may wait for a compute slot;
	// arrivals beyond the cap are shed immediately with 503 and a
	// Retry-After hint. 0 selects 4×Compute; negative means no queue
	// (shed as soon as every slot is busy).
	MaxQueue int
	// Chaos, when non-nil, enables deterministic fault injection — a
	// test/staging facility, never set in production serving.
	Chaos *ChaosConfig

	// NodeID and Peers enable the multi-node serving tier (DESIGN.md
	// §15): Peers maps node ids (NodeID included) to base URLs, and the
	// result-cache keyspace is consistent-hash partitioned across them.
	// A cache miss for a key owned elsewhere is proxied to its owner
	// instead of recomputed; both empty (the default) serves single-node.
	NodeID string
	Peers  map[string]string
	// PeerVnodes is the virtual-node count per ring member; <= 0 selects
	// peering.DefaultVirtualNodes.
	PeerVnodes int
	// PeerFallback bounds concurrent local computations of
	// remotely-owned keys while their owner is unreachable; beyond it
	// such requests shed with 503 + Retry-After. <= 0 means Compute.
	PeerFallback int
	// PeerTransport carries forwarded requests; nil selects the real
	// HTTP transport. The in-process cluster harness injects a
	// peering.MemTransport here.
	PeerTransport http.RoundTripper
	// CacheSnapshotPath, when non-empty, names the result-cache snapshot
	// file: restored (fingerprint-verified) at startup so the node comes
	// up warm, written by SaveCacheSnapshot (the serve command calls it
	// on graceful shutdown).
	CacheSnapshotPath string
}

// Server is the HTTP analytics service. Create with New, expose with
// Handler, and drive with net/http.
type Server struct {
	opts        Options
	corpus      *recipe.Corpus // the default corpus (corpus= absent)
	fingerprint string
	registry    *corpusstore.Registry
	cache       *resultCache
	indexes     *itemset.IndexCache
	live        *liveSet
	flight      *flightGroup
	admit       *admission
	chaos       *chaos
	peers       *peerLayer // nil when serving single-node
	metrics     *metrics
	mux         *http.ServeMux
	started     time.Time
}

// New builds the server, generating the synthetic corpus up front when
// none is supplied so the first request doesn't pay for corpus
// generation.
func New(opts Options) (*Server, error) {
	if opts.RecipeScale == 0 {
		opts.RecipeScale = 1.0
	}
	if opts.MinSupport == 0 {
		opts.MinSupport = 0.05
	}
	if opts.Replicates == 0 {
		opts.Replicates = 100
	}
	if opts.Compute <= 0 {
		opts.Compute = 2
	}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = 64 << 20
	}
	if opts.IndexBytes <= 0 {
		opts.IndexBytes = 64 << 20
	}
	switch {
	case opts.Timeout == 0:
		opts.Timeout = defaultTimeout
	case opts.Timeout < 0:
		opts.Timeout = 0 // deadlines disabled
	}
	switch {
	case opts.MaxQueue == 0:
		opts.MaxQueue = 4 * opts.Compute
	case opts.MaxQueue < 0:
		opts.MaxQueue = 0 // no queue: shed once every slot is busy
	}
	corpus := opts.Corpus
	if corpus == nil {
		cfg := &experiment.Config{Seed: opts.Seed, RecipeScale: opts.RecipeScale}
		var err error
		corpus, err = cfg.Corpus()
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	registry := opts.Registry
	if registry == nil {
		var err error
		registry, err = corpusstore.NewRegistry(corpusstore.NewMemStore(0), corpus.Lexicon())
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	m := newMetrics()
	s := &Server{
		opts:        opts,
		corpus:      corpus,
		fingerprint: corpus.Fingerprint(),
		registry:    registry,
		cache:       newResultCache(opts.CacheBytes),
		indexes:     itemset.NewIndexCache(opts.IndexBytes),
		live:        newLiveSet(),
		flight:      newFlightGroup(),
		admit:       newAdmission(opts.Compute, opts.MaxQueue, shedRetryAfter, m),
		chaos:       newChaos(opts.Chaos, m),
		metrics:     m,
		started:     time.Now(),
	}
	if len(opts.Peers) > 0 {
		fallbackSlots := opts.PeerFallback
		if fallbackSlots <= 0 {
			fallbackSlots = opts.Compute
		}
		peers, err := newPeerLayer(opts.NodeID, opts.Peers, opts.PeerVnodes, fallbackSlots, opts.PeerTransport)
		if err != nil {
			return nil, err
		}
		s.peers = peers
	} else if opts.NodeID != "" {
		return nil, fmt.Errorf("server: NodeID %q set without Peers", opts.NodeID)
	}
	if opts.CacheSnapshotPath != "" {
		if err := s.loadCacheSnapshot(); err != nil {
			return nil, err
		}
	}
	s.routes()
	return s, nil
}

// defaultTimeout is the heavy-endpoint deadline budget when Options
// leaves Timeout at zero.
const defaultTimeout = 2 * time.Minute

// shedRetryAfter is the Retry-After hint (seconds) on shed (503)
// responses: sheds happen because the queue is full right now, so the
// client should back off briefly and retry — the queue drains at
// pipeline speed, not instantly, but a fixed small hint keeps retries
// cheap and honest.
const shedRetryAfter = 1

// endpointBudget scales the base Timeout per endpoint: the ensemble and
// grid pipelines (fig3/fig4/table1/evolve/…) get the full budget, the
// single-mine and pure-lookup endpoints a fraction — a cheap endpoint
// that is slow is *more* wrong than a heavy one, and deserves a faster
// verdict. Endpoints not listed here get the full budget.
var endpointBudget = map[string]float64{
	"/v1/cuisines": 0.25,
	"/v1/overrep":  0.25,
	"/v1/mine":     0.5,
}

// endpointTimeout resolves the deadline budget for an endpoint; zero
// means deadlines are disabled.
func (s *Server) endpointTimeout(endpoint string) time.Duration {
	if s.opts.Timeout <= 0 {
		return 0
	}
	if f, ok := endpointBudget[endpoint]; ok {
		return time.Duration(float64(s.opts.Timeout) * f)
	}
	return s.opts.Timeout
}

// Handler returns the root handler for the service.
func (s *Server) Handler() http.Handler { return s.mux }

// Fingerprint returns the hex corpus fingerprint requests are cached
// under.
func (s *Server) Fingerprint() string { return s.fingerprint }

// Computations returns how many underlying pipeline computations have
// executed — the observable that cache and coalescing tests assert on.
func (s *Server) Computations() uint64 { return s.metrics.computations.Load() }

// corpusSel is one request's resolved corpus: the value every handler
// computes against and the fingerprint its cache keys carry. def marks
// the server's default corpus (no corpus= parameter).
type corpusSel struct {
	corpus      *recipe.Corpus
	fingerprint string
	def         bool
}

// selectCorpus resolves the request's corpus= parameter through the
// registry; absent (or the literal "default") selects the server's
// default corpus. The fingerprint of whatever is selected flows into
// the result-cache keys, so two references to the same content — a
// name, a pinned name@version, a raw fingerprint — share cache entries,
// and distinct corpora can never collide.
func (s *Server) selectCorpus(r *http.Request) (corpusSel, error) {
	ref := strings.TrimSpace(r.URL.Query().Get("corpus"))
	if ref == "" || ref == "default" {
		return corpusSel{corpus: s.corpus, fingerprint: s.fingerprint, def: true}, nil
	}
	corpus, info, err := s.registry.Resolve(ref)
	switch {
	case err == nil:
		return corpusSel{corpus: corpus, fingerprint: info.ID}, nil
	case errors.Is(err, corpusstore.ErrNotFound):
		return corpusSel{}, notFound("unknown corpus %q", ref)
	case errors.Is(err, corpusstore.ErrBadRef):
		return corpusSel{}, badRequest("invalid corpus reference %q", ref)
	default:
		// Remaining typed store failures (e.g. ErrCorrupt) keep their
		// canonical status mapping on the analytics endpoints too.
		return corpusSel{}, corpusError(err)
	}
}

// viewIndex returns the shared corpus index for one region slice
// (region "" is the whole corpus), building and caching it on first
// use. Every handler that mines or counts document frequencies goes
// through here, so one build per (corpus, slice) serves all parameter
// points — and the same keys the experiment harness uses mean a
// /v1/mine request and a Table I run converge on the same entry.
func (s *Server) viewIndex(sel corpusSel, region string, categories bool) (*itemset.Index, error) {
	key := itemset.IndexKey(sel.fingerprint, region, categories)
	return s.indexes.Get(key, func() ([][]ingredient.ID, error) {
		view := sel.corpus.Region(region)
		if region == "" {
			view = sel.corpus.AllView()
		}
		if categories {
			return view.CategoryTransactions(), nil
		}
		return view.Transactions(), nil
	})
}

// config builds the per-request experiment configuration. Each request
// gets a fresh Config sharing the selected corpus and the index cache
// (Config lazily memoizes the corpus; sharing the built one keeps
// requests from regenerating it, and sharing the index cache keeps
// pipeline runs from rebuilding per-region indexes the handlers already
// built — entries are fingerprint-keyed, so corpora never mix).
func (s *Server) config(sel corpusSel, replicates int) *experiment.Config {
	cfg := &experiment.Config{
		Seed:        s.opts.Seed,
		RecipeScale: s.opts.RecipeScale,
		MinSupport:  s.opts.MinSupport,
		Replicates:  replicates,
		Workers:     s.opts.Workers,
	}
	cfg.SetCorpus(sel.corpus)
	cfg.SetIndexes(s.indexes)
	return cfg
}

// httpError carries a status code — and, for overload statuses, a
// Retry-After hint — through the compute path.
type httpError struct {
	status     int
	msg        string
	retryAfter int // seconds; emitted as a Retry-After header when > 0
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// statusWriter records the status code for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request metrics under the given
// endpoint label.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.observe(endpoint, sw.status, time.Since(start).Seconds())
	})
}

// serveComputed is the shared compute path: cache lookup, then
// singleflight coalescing, then the semaphore-gated computation. canon
// must be the canonicalized parameter string — requests that differ
// only in parameter spelling share a key — and fingerprint the selected
// corpus's content fingerprint, which content-addresses the cache entry
// (the corpus= spelling never reaches the key). compute returns the
// response value to be rendered as deterministic JSON.
func (s *Server) serveComputed(w http.ResponseWriter, r *http.Request, fingerprint, endpoint, canon string, compute func(ctx context.Context) (any, error)) {
	key := resultKey(fingerprint, endpoint, canon)
	etag := `"` + key[:32] + `"`
	if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	fault := s.chaos.faultFor(endpoint + "?" + canon)
	if fault == FaultCancel {
		// The simulated client vanished before anything was computed or
		// served; report the 499 the real disconnect path produces.
		s.metrics.chaosInjected[FaultCancel].Add(1)
		s.writeError(w, context.Canceled)
		return
	}
	if body, ok := s.cache.Get(key); ok {
		s.writeBody(w, body, etag, "HIT")
		return
	}
	// Multi-node tier: a miss for a key owned by a peer is proxied to its
	// owner (whose cache, singleflight and admission then apply — the
	// cluster-wide exactly-once path) rather than recomputed here. A
	// request already forwarded by a peer is always served locally, so
	// forwarding is one hop even if two nodes transiently disagree about
	// membership. When the owner is unreachable this node computes the
	// key itself under the bounded fallback budget — availability over
	// placement — or sheds once that budget is busy.
	if s.peers != nil && r.Header.Get(peering.PeerHeader) == "" {
		if owner := s.peers.owner(key); owner != s.peers.self {
			if s.proxyServe(w, r, owner, endpoint, key) {
				return
			}
			if !s.peers.acquireFallback() {
				s.metrics.peerFallbackShed.Add(1)
				s.writeError(w, &httpError{
					status:     http.StatusServiceUnavailable,
					msg:        fmt.Sprintf("peer %s unreachable and fallback budget exhausted", owner),
					retryAfter: shedRetryAfter,
				})
				return
			}
			s.metrics.peerFallback.Add(1)
			defer s.peers.releaseFallback()
		}
	}
	ctx := r.Context()
	if d := s.endpointTimeout(endpoint); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, d, errDeadline)
		defer cancel()
	}
	if s.chaos != nil {
		compute = s.chaos.wrapCompute(endpoint+"?"+canon, fault, compute)
	}
	for {
		body, err, shared := s.flight.Do(ctx, key, func(cctx context.Context) ([]byte, error) {
			// Double-check the cache: a computation that completed between
			// this request's cache miss and its flight leadership already
			// cached the body, and must not be repeated. Peek keeps the
			// hit/miss counters one-per-request.
			if body, ok := s.cache.Peek(key); ok {
				return body, nil
			}
			if err := s.admit.Acquire(cctx); err != nil {
				return nil, err
			}
			defer s.admit.Release()
			s.metrics.computations.Add(1)
			v, err := compute(cctx)
			if err != nil {
				return nil, err
			}
			body, err := marshalDeterministic(v)
			if err != nil {
				return nil, err
			}
			s.cache.Put(key, body)
			return body, nil
		})
		if shared {
			s.metrics.coalesced.Add(1)
		}
		if err != nil {
			// Joining a computation whose waiters all left yields its
			// context.Canceled; if *this* request is still live, retry —
			// it becomes the new leader.
			if errors.Is(err, context.Canceled) && ctx.Err() == nil {
				continue
			}
			s.writeError(w, s.classifyComputeErr(ctx, endpoint, err))
			return
		}
		s.writeBody(w, body, etag, "MISS")
		return
	}
}

// errDeadline is the cancellation cause installed by the per-request
// deadline, distinguishing "the server's budget ran out" (504) from
// "the client went away" (499) when a context error surfaces.
var errDeadline = errors.New("server: request deadline exceeded")

// classifyComputeErr maps a compute-path failure to its response shape.
// Context errors are split by who pulled the plug: the server's own
// deadline becomes a structured 504 with a Retry-After hint and bumps
// the timeout counter; a genuine client cancellation stays a bare
// context error (writeError's 499). Everything else — including the
// admission layer's 503-carrying shed errors — passes through.
func (s *Server) classifyComputeErr(ctx context.Context, endpoint string, err error) error {
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if errors.Is(context.Cause(ctx), errDeadline) {
		s.metrics.deadlineTimeouts.Add(1)
		budget := s.endpointTimeout(endpoint)
		return &httpError{
			status:     http.StatusGatewayTimeout,
			msg:        fmt.Sprintf("deadline exceeded (budget %s)", budget),
			retryAfter: int((budget + time.Second - 1) / time.Second),
		}
	}
	return err
}

func (s *Server) writeBody(w http.ResponseWriter, body []byte, etag, cacheState string) {
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("ETag", etag)
	h.Set("X-Cache", cacheState)
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	retryAfter := 0
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
		retryAfter = he.retryAfter
	} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// Client went away; 499 in the nginx tradition so the metric
		// distinguishes abandonment from failure.
		status = 499
	}
	body := map[string]any{"error": err.Error()}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		body["retry_after_seconds"] = retryAfter
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// canonicalParams renders parsed parameters in a fixed order and fixed
// formatting, so every spelling of the same request ("0.05", "0.050",
// "5e-2") maps to one cache key.
func canonicalParams(pairs ...any) string {
	if len(pairs)%2 != 0 {
		panic("canonicalParams: odd pair count")
	}
	parts := make([]string, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name := pairs[i].(string)
		var val string
		switch v := pairs[i+1].(type) {
		case string:
			val = v
		case bool:
			val = strconv.FormatBool(v)
		case int:
			val = strconv.Itoa(v)
		case uint64:
			val = strconv.FormatUint(v, 10)
		case float64:
			val = strconv.FormatFloat(v, 'g', -1, 64)
		default:
			panic(fmt.Sprintf("canonicalParams: unsupported type %T", v))
		}
		parts = append(parts, name+"="+val)
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}
