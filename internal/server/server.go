// Package server is the HTTP serving layer: a JSON API over every
// analysis pipeline, built for the traffic shape interactive culinary
// analytics actually sees — a fixed corpus queried repeatedly with a
// small set of popular parameterizations. Three mechanisms carry the
// load (DESIGN.md §8):
//
//   - a content-addressed result cache keyed by (corpus fingerprint,
//     endpoint, canonicalized params) with LRU byte-budget eviction —
//     identical requests are served without recomputation and without
//     any invalidation logic, because the key *is* the content;
//   - singleflight coalescing — N concurrent identical requests cost
//     one computation;
//   - a semaphore-gated compute pool — at most Compute pipeline
//     computations run at once, each fanning out through internal/sched
//     under the Workers budget, while cache hits bypass the gate
//     entirely.
//
// Request contexts flow down into the replicate loops, so abandoned
// requests stop burning CPU; /metrics exposes the whole story in
// Prometheus text format with no external dependencies.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"cuisinevol/internal/experiment"
	"cuisinevol/internal/recipe"
)

// Options configures the server.
type Options struct {
	// Seed, RecipeScale, MinSupport, Replicates and Workers mirror the
	// experiment.Config knobs and set the defaults for every request.
	Seed        uint64
	RecipeScale float64
	MinSupport  float64
	Replicates  int
	Workers     int
	// Compute bounds concurrent pipeline computations (the semaphore);
	// <= 0 means 2.
	Compute int
	// CacheBytes is the result-cache budget; <= 0 means 64 MiB.
	CacheBytes int64
	// Corpus, when non-nil, is served instead of a generated one.
	Corpus *recipe.Corpus
}

// Server is the HTTP analytics service. Create with New, expose with
// Handler, and drive with net/http.
type Server struct {
	opts        Options
	corpus      *recipe.Corpus
	fingerprint string
	cache       *resultCache
	flight      *flightGroup
	computeSem  chan struct{}
	metrics     *metrics
	mux         *http.ServeMux
	started     time.Time
}

// New builds the server, generating the synthetic corpus up front when
// none is supplied so the first request doesn't pay for corpus
// generation.
func New(opts Options) (*Server, error) {
	if opts.RecipeScale == 0 {
		opts.RecipeScale = 1.0
	}
	if opts.MinSupport == 0 {
		opts.MinSupport = 0.05
	}
	if opts.Replicates == 0 {
		opts.Replicates = 100
	}
	if opts.Compute <= 0 {
		opts.Compute = 2
	}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = 64 << 20
	}
	corpus := opts.Corpus
	if corpus == nil {
		cfg := &experiment.Config{Seed: opts.Seed, RecipeScale: opts.RecipeScale}
		var err error
		corpus, err = cfg.Corpus()
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s := &Server{
		opts:        opts,
		corpus:      corpus,
		fingerprint: corpusFingerprint(corpus),
		cache:       newResultCache(opts.CacheBytes),
		flight:      newFlightGroup(),
		computeSem:  make(chan struct{}, opts.Compute),
		metrics:     newMetrics(),
		started:     time.Now(),
	}
	s.routes()
	return s, nil
}

// Handler returns the root handler for the service.
func (s *Server) Handler() http.Handler { return s.mux }

// Fingerprint returns the hex corpus fingerprint requests are cached
// under.
func (s *Server) Fingerprint() string { return s.fingerprint }

// Computations returns how many underlying pipeline computations have
// executed — the observable that cache and coalescing tests assert on.
func (s *Server) Computations() uint64 { return s.metrics.computations.Load() }

// corpusFingerprint hashes the corpus content — every recipe's region
// and ingredient set in corpus order — so cache keys derive from the
// data actually served, not from how it was obtained. A corpus loaded
// from disk and an identical generated one share a fingerprint; any
// edit changes it.
func corpusFingerprint(c *recipe.Corpus) string {
	h := sha256.New()
	var buf [4]byte
	for i := 0; i < c.Len(); i++ {
		r := c.Get(i)
		h.Write([]byte(r.Region))
		h.Write([]byte{0})
		for _, id := range r.Ingredients {
			binary.LittleEndian.PutUint32(buf[:], uint32(id))
			h.Write(buf[:])
		}
		h.Write([]byte{0xff})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// config builds the per-request experiment configuration. Each request
// gets a fresh Config sharing the corpus (Config lazily memoizes the
// corpus; sharing the built one keeps requests from regenerating it).
func (s *Server) config(replicates int) *experiment.Config {
	cfg := &experiment.Config{
		Seed:        s.opts.Seed,
		RecipeScale: s.opts.RecipeScale,
		MinSupport:  s.opts.MinSupport,
		Replicates:  replicates,
		Workers:     s.opts.Workers,
	}
	cfg.SetCorpus(s.corpus)
	return cfg
}

// httpError carries a status code through the compute path.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// statusWriter records the status code for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request metrics under the given
// endpoint label.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.observe(endpoint, sw.status, time.Since(start).Seconds())
	})
}

// serveComputed is the shared compute path: cache lookup, then
// singleflight coalescing, then the semaphore-gated computation. canon
// must be the canonicalized parameter string — requests that differ
// only in parameter spelling share a key. compute returns the response
// value to be rendered as deterministic JSON.
func (s *Server) serveComputed(w http.ResponseWriter, r *http.Request, endpoint, canon string, compute func(ctx context.Context) (any, error)) {
	key := resultKey(s.fingerprint, endpoint, canon)
	etag := `"` + key[:32] + `"`
	if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if body, ok := s.cache.Get(key); ok {
		s.writeBody(w, body, etag, "HIT")
		return
	}
	ctx := r.Context()
	for {
		body, err, shared := s.flight.Do(ctx, key, func(cctx context.Context) ([]byte, error) {
			// Double-check the cache: a computation that completed between
			// this request's cache miss and its flight leadership already
			// cached the body, and must not be repeated. Peek keeps the
			// hit/miss counters one-per-request.
			if body, ok := s.cache.Peek(key); ok {
				return body, nil
			}
			if err := s.acquireCompute(cctx); err != nil {
				return nil, err
			}
			defer s.releaseCompute()
			s.metrics.computations.Add(1)
			v, err := compute(cctx)
			if err != nil {
				return nil, err
			}
			body, err := marshalDeterministic(v)
			if err != nil {
				return nil, err
			}
			s.cache.Put(key, body)
			return body, nil
		})
		if shared {
			s.metrics.coalesced.Add(1)
		}
		if err != nil {
			// Joining a computation whose waiters all left yields its
			// context.Canceled; if *this* request is still live, retry —
			// it becomes the new leader.
			if errors.Is(err, context.Canceled) && ctx.Err() == nil {
				continue
			}
			s.writeError(w, err)
			return
		}
		s.writeBody(w, body, etag, "MISS")
		return
	}
}

// acquireCompute takes a compute slot, blocking under the semaphore
// until one frees or ctx is cancelled.
func (s *Server) acquireCompute(ctx context.Context) error {
	s.metrics.waiting.Add(1)
	defer s.metrics.waiting.Add(-1)
	select {
	case s.computeSem <- struct{}{}:
		s.metrics.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) releaseCompute() {
	<-s.computeSem
	s.metrics.inflight.Add(-1)
}

func (s *Server) writeBody(w http.ResponseWriter, body []byte, etag, cacheState string) {
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("ETag", etag)
	h.Set("X-Cache", cacheState)
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
	} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// Client went away; 499 in the nginx tradition so the metric
		// distinguishes abandonment from failure.
		status = 499
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// canonicalParams renders parsed parameters in a fixed order and fixed
// formatting, so every spelling of the same request ("0.05", "0.050",
// "5e-2") maps to one cache key.
func canonicalParams(pairs ...any) string {
	if len(pairs)%2 != 0 {
		panic("canonicalParams: odd pair count")
	}
	parts := make([]string, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		name := pairs[i].(string)
		var val string
		switch v := pairs[i+1].(type) {
		case string:
			val = v
		case bool:
			val = strconv.FormatBool(v)
		case int:
			val = strconv.Itoa(v)
		case uint64:
			val = strconv.FormatUint(v, 10)
		case float64:
			val = strconv.FormatFloat(v, 'g', -1, 64)
		default:
			panic(fmt.Sprintf("canonicalParams: unsupported type %T", v))
		}
		parts = append(parts, name+"="+val)
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}
