package server

import (
	"errors"
	"net/http"
	"strings"

	"cuisinevol/internal/corpusstore"
	"cuisinevol/internal/ingest"
)

// This file is the corpus-management surface of the server: upload a
// raw recipe file and serve analytics against it immediately.
//
//	POST   /v1/corpora?name=<name>[&format=csv|jsonl]   import + register the request body
//	GET    /v1/corpora                                  list registered corpora
//	DELETE /v1/corpora/{id}                             delete by name, name@version or fingerprint
//
// Every analytics endpoint then takes corpus=<ref> to select what it
// computes against (see selectCorpus); the default corpus is untouchable
// by these verbs — it has no registry entry.

// corpusRow is one registered corpus in list/upload/delete responses.
type corpusRow struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Version int    `json:"version"`
	Ref     string `json:"ref"`
	Recipes int    `json:"recipes"`
	Regions int    `json:"regions"`
	Bytes   int64  `json:"bytes"`
}

func toCorpusRow(info corpusstore.Info) corpusRow {
	return corpusRow{
		ID:      info.ID,
		Name:    info.Name,
		Version: info.Version,
		Ref:     info.Ref(),
		Recipes: info.Recipes,
		Regions: info.Regions,
		Bytes:   info.Bytes,
	}
}

// uploadResponse is the POST /v1/corpora body: the registered identity
// plus the import accounting a client needs to judge data quality —
// including a structured sample of the records that failed.
type uploadResponse struct {
	Corpus      corpusRow                 `json:"corpus"`
	Stats       uploadStats               `json:"stats"`
	Skipped     int                       `json:"skipped_records"`
	ErrorSample []corpusstore.RecordIssue `json:"error_sample,omitempty"`
}

// uploadStats mirrors ingest.Stats with stable JSON names.
type uploadStats struct {
	RawRecipes       int     `json:"raw_records"`
	Accepted         int     `json:"accepted"`
	DroppedNoRegion  int     `json:"dropped_no_region"`
	DroppedTooSmall  int     `json:"dropped_too_small"`
	DroppedTooLarge  int     `json:"dropped_too_large"`
	Mentions         int     `json:"mentions"`
	ResolvedMentions int     `json:"resolved_mentions"`
	ResolutionRate   float64 `json:"resolution_rate"`
}

func toUploadStats(s ingest.Stats) uploadStats {
	return uploadStats{
		RawRecipes:       s.RawRecipes,
		Accepted:         s.Accepted,
		DroppedNoRegion:  s.DroppedNoRegion,
		DroppedTooSmall:  s.DroppedTooSmall,
		DroppedTooLarge:  s.DroppedTooLarge,
		Mentions:         s.Mentions,
		ResolvedMentions: s.ResolvedMentions,
		ResolutionRate:   s.ResolutionRate(),
	}
}

// corpusError maps the store's typed failures onto HTTP statuses:
// ErrNotFound → 404, ErrBadName/ErrBadRef → 400, ErrNameTaken → 409,
// ErrTooLarge → 413, ErrCorrupt → 500 (server-side data damage is never
// the client's fault). The mapping is pinned endpoint-by-endpoint by
// TestCorpusErrorMapping.
func corpusError(err error) error {
	switch {
	case errors.Is(err, corpusstore.ErrNotFound):
		return &httpError{status: http.StatusNotFound, msg: err.Error()}
	case errors.Is(err, corpusstore.ErrBadName), errors.Is(err, corpusstore.ErrBadRef):
		return &httpError{status: http.StatusBadRequest, msg: err.Error()}
	case errors.Is(err, corpusstore.ErrNameTaken):
		return &httpError{status: http.StatusConflict, msg: err.Error()}
	case errors.Is(err, corpusstore.ErrTooLarge):
		return &httpError{status: http.StatusRequestEntityTooLarge, msg: err.Error()}
	case errors.Is(err, corpusstore.ErrCorrupt):
		return &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	return err
}

// handleCorpusUpload imports the request body (CSV or JSONL raw recipe
// records, streamed record-by-record) and registers the result under
// the required name parameter. Responds 201 with the fingerprint, the
// ingest statistics, and a sample of per-record errors.
func (s *Server) handleCorpusUpload(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimSpace(r.URL.Query().Get("name"))
	if name == "" {
		s.writeError(w, badRequest("missing required parameter name"))
		return
	}
	if err := corpusstore.ValidateName(name); err != nil {
		s.writeError(w, corpusError(err))
		return
	}
	format, err := corpusstore.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	res, err := corpusstore.Import(r.Body, corpusstore.ImportOptions{
		Format:        format,
		Ingest:        ingest.Options{Lexicon: s.registry.Lexicon()},
		MaxTotalBytes: s.opts.MaxUploadBytes,
	})
	if err != nil {
		s.writeError(w, corpusError(err))
		return
	}
	if res.Stats.Accepted == 0 {
		s.writeError(w, badRequest("no records were accepted (%d seen, %d skipped for errors)",
			res.Stats.RawRecipes, res.Skipped))
		return
	}
	info, err := s.registry.Register(name, res.Corpus)
	if err != nil {
		s.writeError(w, corpusError(err))
		return
	}
	body, err := marshalDeterministic(uploadResponse{
		Corpus:      toCorpusRow(info),
		Stats:       toUploadStats(res.Stats),
		Skipped:     res.Skipped,
		ErrorSample: res.ErrorSample,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusCreated)
	w.Write(body)
}

// handleCorpusList returns every registered corpus plus the default
// corpus's fingerprint (the one corpus= selects when absent).
func (s *Server) handleCorpusList(w http.ResponseWriter, r *http.Request) {
	infos, err := s.registry.List()
	if err != nil {
		s.writeError(w, err)
		return
	}
	rows := make([]corpusRow, len(infos))
	for i, info := range infos {
		rows[i] = toCorpusRow(info)
	}
	body, err := marshalDeterministic(map[string]any{
		"default": map[string]any{"id": s.fingerprint, "recipes": s.corpus.Len()},
		"corpora": rows,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(body)
}

// handleCorpusDelete removes the corpus the path id names (a name,
// name@version, or fingerprint). In-flight requests that already
// resolved it finish against their pinned corpus — cached *results*
// stay valid (content-addressed keys, LRU aging) — but the deleted
// corpus's *index* entries are invalidated eagerly: index entries are
// large and fingerprint-keyed, so without explicit invalidation they
// would sit unreachable-but-resident until byte pressure. Invalidation
// never touches an *Index a query already holds (immutability makes
// removal equivalent to eviction), and the corpus's live write head, if
// any, is dropped with it.
func (s *Server) handleCorpusDelete(w http.ResponseWriter, r *http.Request) {
	info, err := s.registry.Delete(r.PathValue("id"))
	if err != nil {
		s.writeError(w, corpusError(err))
		return
	}
	invalidated := s.indexes.InvalidateFingerprint(info.ID)
	s.live.drop(info.ID)
	body, err := marshalDeterministic(map[string]any{
		"deleted":             toCorpusRow(info),
		"invalidated_indexes": invalidated,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(body)
}
