package server

import (
	"net/http"
	"strings"
	"sync"

	"cuisinevol/internal/corpusstore"
	"cuisinevol/internal/ingest"
	"cuisinevol/internal/itemset"
	"cuisinevol/internal/recipe"
)

// This file is the incremental-mining surface: POST
// /v1/corpora/{id}/append streams records through the importer into a
// new corpus version whose whole-corpus index is derived from the
// parent's LiveIndex head in O(delta) instead of rebuilt from scratch.
//
// The server keeps a small set of live heads keyed by corpus
// fingerprint: appending to a corpus takes its head (or seeds one from
// the parent on first touch), applies the delta, snapshots, re-keys the
// head under the child fingerprint and inserts the snapshot into the
// IndexCache under IndexKey(childFP, "", false) — the exact key
// viewIndex uses, and the snapshot is structurally identical to what a
// from-scratch build would cache there (the LiveIndex contract), so
// queries cannot tell the two paths apart. Region and category views
// stay lazily built per view; only the whole-corpus ingredient index
// rides the incremental path.

// maxLiveHeads bounds how many corpus lineages keep a warm write head;
// beyond it the oldest head is dropped and the next append to that
// lineage re-seeds (correct either way, just O(n) once).
const maxLiveHeads = 8

// liveSet owns the server's LiveIndex heads. Safe for concurrent use.
type liveSet struct {
	mu    sync.Mutex
	heads map[string]*itemset.LiveIndex // corpus fingerprint -> head
	order []string                      // insertion order, oldest first
}

func newLiveSet() *liveSet {
	return &liveSet{heads: make(map[string]*itemset.LiveIndex)}
}

// take removes and returns the head for fp, or nil if none is warm.
func (l *liveSet) take(fp string) *itemset.LiveIndex {
	l.mu.Lock()
	defer l.mu.Unlock()
	li := l.heads[fp]
	if li != nil {
		l.remove(fp)
	}
	return li
}

// put installs li as the head for fp, evicting the oldest head beyond
// the cap.
func (l *liveSet) put(fp string, li *itemset.LiveIndex) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.heads[fp]; ok {
		l.remove(fp)
	}
	l.heads[fp] = li
	l.order = append(l.order, fp)
	for len(l.order) > maxLiveHeads {
		oldest := l.order[0]
		l.remove(oldest)
	}
}

// drop discards the head for fp, if any (corpus deleted).
func (l *liveSet) drop(fp string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.remove(fp)
}

// remove unlinks fp under l.mu.
func (l *liveSet) remove(fp string) {
	if _, ok := l.heads[fp]; !ok {
		return
	}
	delete(l.heads, fp)
	for i, k := range l.order {
		if k == fp {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
}

// snapshotStats reports the retained head count and the summed epochs
// across heads (the write-progress gauge on /metrics).
func (l *liveSet) snapshotStats() (heads int, epochs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, li := range l.heads {
		epochs += li.Epoch()
	}
	return len(l.heads), epochs
}

// appendIndexInfo is the "index" object in the append response: how the
// child's index was derived.
type appendIndexInfo struct {
	Incremental bool   `json:"incremental"` // false when the head had to be seeded O(n) first
	Epoch       uint64 `json:"epoch"`       // the head's epoch after the delta
	AppendedTx  int    `json:"appended_transactions"`
}

// appendResponse is the POST /v1/corpora/{id}/append body: the upload
// accounting plus how the index was derived.
type appendResponse struct {
	Corpus      corpusRow                 `json:"corpus"`
	Parent      corpusRow                 `json:"parent"`
	Stats       uploadStats               `json:"stats"`
	Skipped     int                       `json:"skipped_records"`
	ErrorSample []corpusstore.RecordIssue `json:"error_sample,omitempty"`
	Index       appendIndexInfo           `json:"index"`
}

// handleCorpusAppend streams the request body (CSV or JSONL raw recipe
// records) onto the referenced corpus, registering the result as the
// next version under the parent's name. The parent is never mutated —
// queries pinned to it, and its cache entries, stay valid; the child's
// whole-corpus index is derived incrementally from the parent's live
// head and placed in the IndexCache before the response returns, so the
// first query against the new version is already warm.
func (s *Server) handleCorpusAppend(w http.ResponseWriter, r *http.Request) {
	ref := strings.TrimSpace(r.PathValue("id"))
	parent, info, err := s.registry.Resolve(ref)
	if err != nil {
		s.writeError(w, corpusError(err))
		return
	}
	format, err := corpusstore.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	res, err := corpusstore.Append(parent, r.Body, corpusstore.ImportOptions{
		Format:        format,
		Ingest:        ingest.Options{Lexicon: s.registry.Lexicon()},
		MaxTotalBytes: s.opts.MaxUploadBytes,
	})
	if err != nil {
		s.writeError(w, corpusError(err))
		return
	}
	if res.Stats.Accepted == 0 {
		s.writeError(w, badRequest("no records were accepted (%d seen, %d skipped for errors)",
			res.Stats.RawRecipes, res.Skipped))
		return
	}
	childInfo, err := s.registry.Register(info.Name, res.Corpus)
	if err != nil {
		s.writeError(w, corpusError(err))
		return
	}
	ixInfo, err := s.appendLive(parent, info.ID, res.Corpus, childInfo.ID)
	if err != nil {
		s.writeError(w, err)
		return
	}
	body, err := marshalDeterministic(appendResponse{
		Corpus:      toCorpusRow(childInfo),
		Parent:      toCorpusRow(info),
		Stats:       toUploadStats(res.Stats),
		Skipped:     res.Skipped,
		ErrorSample: res.ErrorSample,
		Index:       ixInfo,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusCreated)
	w.Write(body)
}

// appendLive advances the parent's live head by the child's delta and
// caches the resulting epoch snapshot under the child fingerprint. When
// no head is warm for the parent (first append to this lineage, restart,
// or head eviction) one is seeded from the parent's transactions — the
// only O(parent) step; every subsequent append along the lineage costs
// O(delta) plus the snapshot materialization.
func (s *Server) appendLive(parent *recipe.Corpus, parentFP string, child *recipe.Corpus, childFP string) (appendIndexInfo, error) {
	li := s.live.take(parentFP)
	seeded := false
	if li == nil {
		li = itemset.NewLiveIndex()
		if _, err := li.Append(parent.AllView().Transactions()); err != nil {
			return appendIndexInfo{}, err
		}
		seeded = true
		s.metrics.liveSeeds.Add(1)
	}
	delta := child.TailView(parent.Len()).Transactions()
	if _, err := li.Append(delta); err != nil {
		return appendIndexInfo{}, err
	}
	snap := li.Snapshot()
	s.live.put(childFP, li)
	s.indexes.Put(itemset.IndexKey(childFP, "", false), snap)
	s.metrics.liveAppends.Add(1)
	s.metrics.liveAppendedTx.Add(uint64(len(delta)))
	s.metrics.liveSnapshots.Add(1)
	return appendIndexInfo{
		Incremental: !seeded,
		Epoch:       li.Epoch(),
		AppendedTx:  len(delta),
	}, nil
}
