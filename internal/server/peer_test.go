package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"cuisinevol/internal/peering"
)

// twoNodes builds a two-node in-process cluster over a MemTransport and
// returns both servers (n0, n1). mutate lets a test adjust the shared
// option template before the servers are built.
func twoNodes(t *testing.T, mutate func(id string, opts *Options)) (*Server, *Server, *peering.MemTransport) {
	t.Helper()
	tr := peering.NewMemTransport()
	peers := map[string]string{"n0": "http://n0", "n1": "http://n1"}
	build := func(id string) *Server {
		opts := Options{
			Seed:          42,
			Replicates:    2,
			Compute:       2,
			Corpus:        testCorpus(t),
			NodeID:        id,
			Peers:         peers,
			PeerTransport: tr,
		}
		if mutate != nil {
			mutate(id, &opts)
		}
		srv, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		tr.Register(id, srv.Handler())
		return srv
	}
	return build("n0"), build("n1"), tr
}

// pathOwnedBy finds a /v1/mine request whose cache key lands on the
// wanted node, by probing the same key derivation the server uses.
func pathOwnedBy(t *testing.T, s *Server, owner string) string {
	t.Helper()
	for top := 1; top < 200; top++ {
		canon := canonicalParams(
			"categories", false,
			"kernel", "auto",
			"region", "ITA",
			"support", s.opts.MinSupport,
			"top", top,
		)
		key := resultKey(s.fingerprint, "/v1/mine", canon)
		if s.peers.owner(key) == owner {
			return fmt.Sprintf("/v1/mine?region=ITA&top=%d", top)
		}
	}
	t.Fatalf("no probe path owned by %s", owner)
	return ""
}

func doReq(h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestPeerProxyFillsLocalCache: a request on the non-owner is proxied
// to the owner (which computes it exactly once) and the body fills the
// non-owner's cache, so the repeat is a local hit with zero forwards.
func TestPeerProxyFillsLocalCache(t *testing.T) {
	n0, n1, _ := twoNodes(t, nil)
	path := pathOwnedBy(t, n0, "n1")

	rec := doReq(n0.Handler(), path, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("proxied request: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Peer-Owner"); got != "n1" {
		t.Fatalf("X-Peer-Owner = %q, want n1", got)
	}
	if n0.Computations() != 0 || n1.Computations() != 1 {
		t.Fatalf("computations n0=%d n1=%d, want 0/1", n0.Computations(), n1.Computations())
	}
	if got := n0.metrics.peerProxied.Load(); got != 1 {
		t.Fatalf("proxied counter = %d, want 1", got)
	}

	// Repeat on the non-owner: local HIT, no new forward, no compute.
	rec2 := doReq(n0.Handler(), path, nil)
	if rec2.Code != http.StatusOK || rec2.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("repeat: %d X-Cache=%q", rec2.Code, rec2.Header().Get("X-Cache"))
	}
	if rec2.Body.String() != rec.Body.String() {
		t.Fatal("peer-filled body differs from proxied body")
	}
	if got := n0.metrics.peerProxied.Load(); got != 1 {
		t.Fatalf("repeat forwarded again: proxied = %d", got)
	}

	// Owner serves the same path locally, from its own cache.
	rec3 := doReq(n1.Handler(), path, nil)
	if rec3.Code != http.StatusOK || rec3.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("owner repeat: %d X-Cache=%q", rec3.Code, rec3.Header().Get("X-Cache"))
	}
	if n1.Computations() != 1 {
		t.Fatalf("owner recomputed: %d", n1.Computations())
	}

	// ETag flows through the proxy: a conditional repeat on the
	// non-owner is a 304 without bodies moving anywhere.
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("proxied response missing ETag")
	}
	rec4 := doReq(n0.Handler(), path, map[string]string{"If-None-Match": etag})
	if rec4.Code != http.StatusNotModified {
		t.Fatalf("conditional repeat: %d", rec4.Code)
	}
}

// TestPeerHeaderServedLocally: a forwarded request is always answered
// by the receiving node, so forwarding is single-hop by construction.
func TestPeerHeaderServedLocally(t *testing.T) {
	n0, n1, _ := twoNodes(t, nil)
	path := pathOwnedBy(t, n0, "n0") // owned by n0, sent to n1 as if forwarded
	rec := doReq(n1.Handler(), path, map[string]string{peering.PeerHeader: "n0"})
	if rec.Code != http.StatusOK {
		t.Fatalf("forwarded request: %d %s", rec.Code, rec.Body.String())
	}
	if n1.Computations() != 1 || n0.Computations() != 0 {
		t.Fatalf("forwarded request not served locally: n0=%d n1=%d", n0.Computations(), n1.Computations())
	}
	if n1.metrics.peerProxied.Load() != 0 {
		t.Fatal("forwarded request was re-forwarded")
	}
}

// TestPeerFallbackWhenOwnerUnreachable: with the owner dead, the
// non-owner computes the key itself (counted as a fallback), caches it,
// and keeps the byte-identical answer when the owner returns.
func TestPeerFallbackWhenOwnerUnreachable(t *testing.T) {
	n0, n1, tr := twoNodes(t, nil)
	path := pathOwnedBy(t, n0, "n1")

	// Baseline body from the healthy owner path.
	healthy := doReq(n0.Handler(), path, nil)
	if healthy.Code != http.StatusOK {
		t.Fatalf("healthy: %d", healthy.Code)
	}

	tr.Kill("n1")
	n0b, err := New(Options{
		Seed: 42, Replicates: 2, Compute: 2, Corpus: testCorpus(t),
		NodeID: "n0", Peers: map[string]string{"n0": "http://n0", "n1": "http://n1"},
		PeerTransport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := doReq(n0b.Handler(), path, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("fallback request: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Body.String() != healthy.Body.String() {
		t.Fatal("fallback body differs from owner-computed body")
	}
	if n0b.Computations() != 1 {
		t.Fatalf("fallback computations = %d, want 1", n0b.Computations())
	}
	if got := n0b.metrics.peerFallback.Load(); got != 1 {
		t.Fatalf("fallback counter = %d, want 1", got)
	}
	_ = n1
}

// TestPeerFallbackBudgetSheds: the fallback path is bounded — with one
// fallback slot parked on a chaos gate, a second owner-unreachable
// distinct key sheds with 503 + Retry-After instead of piling on.
func TestPeerFallbackBudgetSheds(t *testing.T) {
	gate := make(chan struct{})
	var blocked atomic.Int64
	tr := peering.NewMemTransport()
	srv, err := New(Options{
		Seed: 42, Replicates: 2, Compute: 4, Timeout: -1, Corpus: testCorpus(t),
		NodeID: "n0", Peers: map[string]string{"n0": "http://n0", "n1": "http://n1"},
		PeerTransport: tr, PeerFallback: 1,
		Chaos: &ChaosConfig{
			Seed:        7,
			LatencyRate: 1,
			Block: func(ctx context.Context, key string) error {
				blocked.Add(1)
				select {
				case <-gate:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Register("n0", srv.Handler())
	tr.Kill("n1") // owner of every remotely-owned key is down

	// Two distinct paths owned by the dead peer.
	pathA := pathOwnedBy(t, srv, "n1")
	var pathB string
	for top := 1; top < 400; top++ {
		p := fmt.Sprintf("/v1/mine?region=ITA&top=%d", top)
		if p == pathA {
			continue
		}
		canon := canonicalParams("categories", false, "kernel", "auto", "region", "ITA", "support", srv.opts.MinSupport, "top", top)
		if srv.peers.owner(resultKey(srv.fingerprint, "/v1/mine", canon)) == "n1" {
			pathB = p
			break
		}
	}
	if pathB == "" {
		t.Fatal("no second probe path owned by n1")
	}

	first := make(chan int, 1)
	go func() {
		rec := doReq(srv.Handler(), pathA, nil)
		first <- rec.Code
	}()
	spinUntil(t, "fallback compute parked at gate", func() bool { return blocked.Load() == 1 })

	rec := doReq(srv.Handler(), pathB, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second fallback: %d (want 503), body %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("fallback shed missing Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "fallback budget") {
		t.Fatalf("shed body: %s", rec.Body.String())
	}
	if got := srv.metrics.peerFallbackShed.Load(); got != 1 {
		t.Fatalf("fallback shed counter = %d, want 1", got)
	}

	close(gate)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("gated fallback finished %d", code)
	}
}

// TestUpdatePeersCountsRingMoves: membership changes reassign only the
// departed member's keyspace, and the reassigned arcs land on the
// ring-moves counter.
func TestUpdatePeersCountsRingMoves(t *testing.T) {
	n0, _, _ := twoNodes(t, nil)
	if err := n0.UpdatePeers(map[string]string{"n0": "http://n0"}); err != nil {
		t.Fatal(err)
	}
	if got := n0.metrics.peerRingMoves.Load(); got == 0 {
		t.Fatal("shrinking the ring moved no arcs")
	}
	// Every key is now locally owned: no forwards happen.
	rec := doReq(n0.Handler(), "/v1/mine?region=ITA&top=17", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-update request: %d", rec.Code)
	}
	if n0.metrics.peerProxied.Load() != 0 {
		t.Fatal("single-member ring still forwarded")
	}
	// Dropping self is rejected.
	if err := n0.UpdatePeers(map[string]string{"n9": "http://n9"}); err == nil {
		t.Fatal("peer set without self accepted")
	}
}

// TestCacheSnapshotSaveRestore: a node restarted with the snapshot of
// its predecessor serves the same requests from cache — byte-identical,
// zero computations — and the snapshot metrics tell the story.
func TestCacheSnapshotSaveRestore(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "n0.snapshot")
	mk := func() *Server {
		srv, err := New(Options{
			Seed: 42, Replicates: 2, Compute: 2, Corpus: testCorpus(t),
			CacheSnapshotPath: snap,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	first := mk()
	paths := []string{"/v1/mine?region=ITA&top=5", "/v1/overrep?region=KOR&k=4", "/v1/mine?region=FRA&top=3"}
	bodies := make(map[string]string)
	for _, p := range paths {
		rec := doReq(first.Handler(), p, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d", p, rec.Code)
		}
		bodies[p] = rec.Body.String()
	}
	n, err := first.SaveCacheSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(paths) {
		t.Fatalf("snapshot wrote %d entries, want %d", n, len(paths))
	}
	if got := first.metrics.peerSnapshotSaves.Load(); got != 1 {
		t.Fatalf("snapshot saves = %d", got)
	}

	restarted := mk()
	if got := restarted.metrics.peerSnapshotLoads.Load(); got != 1 {
		t.Fatalf("snapshot loads = %d, want 1", got)
	}
	if got := restarted.metrics.peerSnapshotEntries.Load(); got != uint64(len(paths)) {
		t.Fatalf("snapshot entries restored = %d, want %d", got, len(paths))
	}
	for _, p := range paths {
		rec := doReq(restarted.Handler(), p, nil)
		if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "HIT" {
			t.Fatalf("restarted %s: %d X-Cache=%q", p, rec.Code, rec.Header().Get("X-Cache"))
		}
		if rec.Body.String() != bodies[p] {
			t.Fatalf("restored body for %s drifted", p)
		}
	}
	if restarted.Computations() != 0 {
		t.Fatalf("warm restart recomputed %d keys", restarted.Computations())
	}
}

// TestCacheSnapshotCorruptStartsCold: a corrupt snapshot is quarantined
// and the node starts cold and healthy, with the error counted.
func TestCacheSnapshotCorruptStartsCold(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "n0.snapshot")
	if err := os.WriteFile(snap, []byte("{\"version\":1,\"entries\":2,\"sha256\":\"00\"}\nnot a record\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{
		Seed: 42, Replicates: 2, Compute: 2, Corpus: testCorpus(t),
		CacheSnapshotPath: snap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.metrics.peerSnapshotLoadErrors.Load(); got != 1 {
		t.Fatalf("load errors = %d, want 1", got)
	}
	if _, err := os.Stat(snap + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	rec := doReq(srv.Handler(), "/v1/mine?region=ITA&top=2", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cold start unhealthy: %d", rec.Code)
	}
	// A fresh save replaces the quarantined file's slot cleanly.
	if _, err := srv.SaveCacheSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := peering.ReadSnapshot(snap); err != nil {
		t.Fatalf("fresh snapshot unreadable: %v", err)
	}
}

// TestPeerOptionsValidation pins the topology error paths.
func TestPeerOptionsValidation(t *testing.T) {
	base := Options{Seed: 42, Replicates: 2, Corpus: testCorpus(t)}

	opts := base
	opts.NodeID = "n0"
	if _, err := New(opts); err == nil {
		t.Fatal("NodeID without Peers accepted")
	}

	opts = base
	opts.Peers = map[string]string{"n0": "http://n0"}
	if _, err := New(opts); err == nil {
		t.Fatal("Peers without NodeID accepted")
	}

	opts = base
	opts.NodeID = "nX"
	opts.Peers = map[string]string{"n0": "http://n0"}
	if _, err := New(opts); err == nil {
		t.Fatal("NodeID outside peer set accepted")
	}
}
