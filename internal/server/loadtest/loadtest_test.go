package loadtest

import (
	"context"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cuisinevol/internal/recipe"
	"cuisinevol/internal/server"
	"cuisinevol/internal/synth"
)

var (
	corpusOnce   sync.Once
	sharedCorpus *recipe.Corpus
	corpusErr    error
)

func testCorpus(t *testing.T) *recipe.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		gen := synth.DefaultConfig(42)
		gen.RecipeScale = 0.05
		sharedCorpus, corpusErr = synth.Generate(gen)
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return sharedCorpus
}

// eventually spins (yielding, not sleeping) until cond holds; the
// conditions below are guaranteed to converge within microseconds of an
// already-observed event, so this only smooths over the nanosecond gap
// between an atomic admission decision and its metrics write.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition never held: %s", what)
		}
		runtime.Gosched()
	}
}

func metric(t *testing.T, h http.Handler, name string) float64 {
	t.Helper()
	v, ok := Metric(h, name)
	if !ok {
		t.Fatalf("metric %s not exported", name)
	}
	return v
}

// TestShedExactlyBeyondQueueCap is the acceptance invariant: with
// Compute=C slots, queue cap Q and N≫C+Q concurrent distinct requests
// against a server whose computations are all held on a chaos gate,
// exactly C+Q requests admit and the other N−C−Q are shed fast with
// 503 + Retry-After — before any computation finishes, with no
// time-based sleeps anywhere. Shed requests never consume a compute
// slot (the computation counter proves it), the /metrics shed counter
// matches the observed 503s, and every completed response is
// byte-identical to an unloaded baseline server's answer.
func TestShedExactlyBeyondQueueCap(t *testing.T) {
	corpus := testCorpus(t)
	const C, Q, N = 2, 3, 24

	gate := make(chan struct{})
	var blocked atomic.Int64
	opts := server.Options{
		Seed:       42,
		Replicates: 2,
		Compute:    C,
		MaxQueue:   Q,
		Timeout:    -1, // deadlines off: requests resolve by gate, not clock
		Corpus:     corpus,
		Chaos: &server.ChaosConfig{
			Seed:        7,
			LatencyRate: 1, // every computation holds its slot on the gate
			Block: func(ctx context.Context, key string) error {
				blocked.Add(1)
				select {
				case <-gate:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			},
		},
	}
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	mix := Distinct(corpus, 1, N)
	run := Start(h, mix)

	// The system fills monotonically — C slots, then Q queue entries,
	// then sheds — so the first N−C−Q completions must all be 503s.
	shed := run.Await(N - C - Q)
	for _, res := range shed {
		if res.Status != http.StatusServiceUnavailable {
			t.Fatalf("pre-gate completion %s: status %d (want 503), body %s", res.Path, res.Status, res.Body)
		}
		if res.RetryAfter == "" {
			t.Fatalf("shed response %s missing Retry-After", res.Path)
		}
		if !strings.Contains(res.Body, "retry_after_seconds") {
			t.Fatalf("shed response %s lacks structured retry hint: %s", res.Path, res.Body)
		}
	}

	// Exactly C computations hold slots and Q wait; metrics agree with
	// the observed sheds before anything completes.
	eventually(t, "C computations blocked", func() bool { return blocked.Load() == C })
	eventually(t, "inflight gauge = C", func() bool { return metric(t, h, "cuisinevol_compute_inflight") == C })
	eventually(t, "waiting gauge = Q", func() bool { return metric(t, h, "cuisinevol_compute_waiting") == Q })
	if got := metric(t, h, "cuisinevol_shed_total"); got != N-C-Q {
		t.Fatalf("shed_total = %v, want %d", got, N-C-Q)
	}

	// Open the gate: every admitted request completes normally.
	close(gate)
	rest := run.Wait().Results
	if len(rest) != C+Q {
		t.Fatalf("admitted %d requests, want exactly C+Q = %d", len(rest), C+Q)
	}
	for _, res := range rest {
		if res.Status != http.StatusOK {
			t.Fatalf("admitted request %s: status %d, body %s", res.Path, res.Status, res.Body)
		}
	}
	// Shed requests never consumed a compute slot: only the admitted
	// C+Q ever computed.
	if got := srv.Computations(); got != C+Q {
		t.Fatalf("computations = %d, want %d (sheds must not compute)", got, C+Q)
	}

	// Completed responses are byte-identical to an unloaded server.
	baseSrv, err := server.New(server.Options{
		Seed: 42, Replicates: 2, Compute: C, Timeout: -1, Corpus: corpus,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseline := Baseline(baseSrv.Handler(), mix)
	for _, res := range rest {
		want, ok := baseline[res.Path]
		if !ok {
			t.Fatalf("baseline has no 200 for %s", res.Path)
		}
		if res.Body != want {
			t.Fatalf("loaded response for %s differs from unloaded baseline", res.Path)
		}
	}
}

// TestDeadlineBudgetEnforced holds every computation on a never-opened
// gate and asserts the deadline layer turns each admitted request into
// a structured 504 with Retry-After — no request outlives its budget by
// more than scheduling slack, the timeout counter matches the observed
// 504s, and the stuck computations release their slots (the Block hook
// observes the cancellation the singleflight group propagates).
func TestDeadlineBudgetEnforced(t *testing.T) {
	corpus := testCorpus(t)
	const C, Q, N = 1, 8, 4
	const budget = 250 * time.Millisecond

	gate := make(chan struct{}) // never opened: only deadlines resolve requests
	opts := server.Options{
		Seed:       42,
		Replicates: 2,
		Compute:    C,
		MaxQueue:   Q,
		Timeout:    budget,
		Corpus:     corpus,
		Chaos: &server.ChaosConfig{
			Seed:        7,
			LatencyRate: 1,
			Block: func(ctx context.Context, key string) error {
				select {
				case <-gate:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			},
		},
	}
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	mix := Distinct(corpus, 2, N) // N <= C+Q: nothing sheds, everything times out
	rep := Start(h, mix).Wait()

	for _, res := range rep.Results {
		if res.Status != http.StatusGatewayTimeout {
			t.Fatalf("%s: status %d (want 504), body %s", res.Path, res.Status, res.Body)
		}
		if res.RetryAfter == "" {
			t.Fatalf("%s: 504 missing Retry-After", res.Path)
		}
		// The per-endpoint budget is at most `budget`; generous slack
		// absorbs CI scheduling, but a request that took several budgets
		// outlived its deadline.
		if res.Duration > budget+5*time.Second {
			t.Fatalf("%s: outlived its deadline budget: took %v (budget %v)", res.Path, res.Duration, budget)
		}
	}
	if got := metric(t, h, "cuisinevol_deadline_timeouts_total"); got != N {
		t.Fatalf("deadline_timeouts_total = %v, want %d", got, N)
	}
	if got := metric(t, h, "cuisinevol_shed_total"); got != 0 {
		t.Fatalf("shed_total = %v, want 0 (N <= C+Q)", got)
	}
	// Abandoned computations observe cancellation and free their slots.
	eventually(t, "inflight drains to 0", func() bool { return metric(t, h, "cuisinevol_compute_inflight") == 0 })
	eventually(t, "waiting drains to 0", func() bool { return metric(t, h, "cuisinevol_compute_waiting") == 0 })
}

// TestCoalescedRequestsBypassAdmission: N identical concurrent requests
// on a server with one compute slot and a zero-length queue must all
// succeed with exactly one computation and zero sheds — coalesced joins
// and cache hits never touch the admission layer, so popular traffic is
// unaffected by a full queue.
func TestCoalescedRequestsBypassAdmission(t *testing.T) {
	corpus := testCorpus(t)
	srv, err := server.New(server.Options{
		Seed:       42,
		Replicates: 2,
		Compute:    1,
		MaxQueue:   -1, // no queue at all
		Corpus:     corpus,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	path := "/v1/mine?region=" + corpus.Regions()[0] + "&top=9"
	mix := Mix{Paths: []string{path}}.Repeat(16)
	rep := Start(h, mix).Wait()
	for _, res := range rep.Results {
		if res.Status != http.StatusOK {
			t.Fatalf("coalesced request: status %d, body %s", res.Status, res.Body)
		}
	}
	if got := srv.Computations(); got != 1 {
		t.Fatalf("computations = %d, want 1", got)
	}
	if got := metric(t, h, "cuisinevol_shed_total"); got != 0 {
		t.Fatalf("shed_total = %v, want 0", got)
	}
}

// TestChaoticLoadMatchesBaseline replays a duplicate-heavy mix against
// a server injecting deterministic error and cancel faults and checks
// the contamination boundary: every 200 that does complete is
// byte-identical to the unloaded chaos-free baseline, fault outcomes
// are a pure function of the seed (an identical second server yields
// identical per-path statuses), and a repeat replay on the same server
// serves every previously-computed path from cache.
func TestChaoticLoadMatchesBaseline(t *testing.T) {
	corpus := testCorpus(t)
	chaotic := func() *server.Server {
		srv, err := server.New(server.Options{
			Seed:       42,
			Replicates: 2,
			Compute:    4,
			Timeout:    -1,
			Corpus:     corpus,
			Chaos: &server.ChaosConfig{
				Seed:       11,
				ErrorRate:  0.25,
				CancelRate: 0.25,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	srv := chaotic()
	h := srv.Handler()

	mix := Distinct(corpus, 3, 12).Repeat(2)
	rep := Start(h, mix).Wait()

	for status := range rep.Statuses() {
		if status != http.StatusOK && status != http.StatusInternalServerError && status != 499 {
			t.Fatalf("unexpected status %d under error/cancel chaos", status)
		}
	}
	if rep.CountStatus(http.StatusOK) == 0 || rep.CountStatus(http.StatusOK) == len(rep.Results) {
		t.Fatalf("chaos rates produced degenerate outcome split: %v", rep.Statuses())
	}

	baseSrv, err := server.New(server.Options{
		Seed: 42, Replicates: 2, Compute: 4, Timeout: -1, Corpus: corpus,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseline := Baseline(baseSrv.Handler(), mix)
	statusByPath := make(map[string]int)
	for _, res := range rep.Results {
		statusByPath[res.Path] = res.Status
		if res.Status == http.StatusOK {
			if res.Body != baseline[res.Path] {
				t.Fatalf("chaotic 200 for %s differs from baseline", res.Path)
			}
		}
	}

	// Same seed, fresh server: identical fault decisions per path.
	rep2 := Start(chaotic().Handler(), mix).Wait()
	for _, res := range rep2.Results {
		if res.Status != statusByPath[res.Path] {
			t.Fatalf("fault decisions not reproducible: %s was %d, now %d",
				res.Path, statusByPath[res.Path], res.Status)
		}
	}

	// Replay on the same server: every path that succeeded is now a HIT;
	// caching behavior is unchanged by the chaos layer. Error-faulted
	// paths cache nothing and so recompute — up to once per copy, since
	// injected failures return too fast for the copies to coalesce.
	errorPaths := 0
	for _, status := range statusByPath {
		if status == http.StatusInternalServerError {
			errorPaths++
		}
	}
	before := srv.Computations()
	rep3 := Start(h, mix).Wait()
	for _, res := range rep3.Results {
		if res.Status == http.StatusOK && res.XCache != "HIT" {
			t.Fatalf("repeat of computed path %s: X-Cache = %q, want HIT", res.Path, res.XCache)
		}
	}
	if got := srv.Computations(); got > before+2*uint64(errorPaths) {
		t.Fatalf("repeat replay recomputed cached paths: %d -> %d (%d error paths)", before, got, errorPaths)
	}
}
