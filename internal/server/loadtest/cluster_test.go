package loadtest

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"

	"cuisinevol/internal/server"
)

// clusterOptions is the shared node template the cluster tests build
// on: small compute pool, tiny ensembles, shared corpus.
func clusterOptions(t *testing.T) server.Options {
	return server.Options{
		Seed:       42,
		Replicates: 2,
		Compute:    4,
		Corpus:     testCorpus(t),
	}
}

// singleNode builds the single-node reference server the cluster's
// responses are compared against: same corpus, same options, no peers.
func singleNode(t *testing.T, opts server.Options) *server.Server {
	t.Helper()
	opts.NodeID = ""
	opts.Peers = nil
	opts.PeerTransport = nil
	opts.CacheSnapshotPath = ""
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestClusterExactlyOnceAndByteIdentical is the headline invariant:
// a duplicate-heavy workload sprayed across three nodes computes each
// distinct key exactly once cluster-wide — duplicates coalesce on the
// key's owner no matter which node they enter through — and every
// response is byte-identical to the single-node baseline. A full
// replay computes nothing at all.
func TestClusterExactlyOnceAndByteIdentical(t *testing.T) {
	opts := clusterOptions(t)
	cluster, err := NewCluster(3, opts, "")
	if err != nil {
		t.Fatal(err)
	}
	baseline := Baseline(singleNode(t, opts).Handler(), Distinct(opts.Corpus, 7, 24))

	mix := Distinct(opts.Corpus, 7, 24).Repeat(3)
	rep := Start(cluster.Handler(), mix).Wait()
	for _, res := range rep.Results {
		if res.Status != http.StatusOK {
			t.Fatalf("%s: %d %s", res.Path, res.Status, res.Body)
		}
		if res.Body != baseline[res.Path] {
			t.Fatalf("%s: cluster body differs from single-node baseline", res.Path)
		}
	}
	if got := cluster.Computations(); got != 24 {
		t.Fatalf("cluster computed %d keys, want exactly 24 (one per distinct key)", got)
	}

	// The ring actually forwarded: with 72 entries spread round-robin
	// over 3 nodes, some must have entered through a non-owner.
	var proxied float64
	for i := 0; i < cluster.Size(); i++ {
		proxied += metric(t, cluster.NodeHandler(i), "cuisinevol_peer_proxied_total")
	}
	if proxied == 0 {
		t.Fatal("no request was proxied — the ring never forwarded")
	}
	// Healthy cluster: the fallback path never fires.
	for i := 0; i < cluster.Size(); i++ {
		if v := metric(t, cluster.NodeHandler(i), "cuisinevol_peer_fallback_total"); v != 0 {
			t.Fatalf("node %d used fallback with every peer healthy: %v", i, v)
		}
	}

	// Replaying the whole workload is pure cache traffic.
	rep2 := Start(cluster.Handler(), mix).Wait()
	if got := rep2.CountStatus(http.StatusOK); got != len(mix.Paths) {
		t.Fatalf("replay: %d/%d OK, statuses %v", got, len(mix.Paths), rep2.Statuses())
	}
	if got := cluster.Computations(); got != 24 {
		t.Fatalf("replay recomputed: %d computations, want 24", got)
	}
}

// TestClusterChaosMatchesSingleNode pins chaos determinism across the
// tier: fault decisions are pure functions of (seed, request identity),
// never of placement, so a chaotic cluster replay produces exactly the
// per-path statuses of a chaotic single-node sequential replay — and
// its successes stay byte-identical to a chaos-free baseline.
func TestClusterChaosMatchesSingleNode(t *testing.T) {
	opts := clusterOptions(t)
	opts.Chaos = &server.ChaosConfig{Seed: 99, ErrorRate: 0.25, CancelRate: 0.25}
	cluster, err := NewCluster(3, opts, "")
	if err != nil {
		t.Fatal(err)
	}
	mix := Distinct(opts.Corpus, 11, 30)

	rep := Start(cluster.Handler(), mix).Wait()
	clusterStatus := make(map[string]int, len(rep.Results))
	for _, res := range rep.Results {
		clusterStatus[res.Path] = res.Status
	}

	chaotic := singleNode(t, opts)
	clean := clusterOptions(t)
	cleanBodies := Baseline(singleNode(t, clean).Handler(), mix)
	cancels := 0
	for _, res := range rep.Results {
		single := do(chaotic.Handler(), res.Path)
		if clusterStatus[res.Path] != single.Status {
			t.Fatalf("%s: cluster %d, single-node %d — chaos decision depended on placement",
				res.Path, clusterStatus[res.Path], single.Status)
		}
		switch res.Status {
		case http.StatusOK:
			if res.Body != cleanBodies[res.Path] {
				t.Fatalf("%s: chaotic cluster success differs from clean baseline", res.Path)
			}
		case 499:
			cancels++
		}
	}
	statuses := rep.Statuses()
	if statuses[http.StatusOK] == 0 || statuses[http.StatusInternalServerError] == 0 || statuses[499] == 0 {
		t.Fatalf("chaos mix did not exercise all outcomes: %v", statuses)
	}
	// Cancel faults fire before any compute or forward; error faults
	// compute once on the owner. So cluster-wide computations are
	// exactly the non-cancelled distinct paths.
	if got, want := cluster.Computations(), uint64(len(mix.Paths)-cancels); got != want {
		t.Fatalf("chaotic cluster computed %d, want %d (paths minus cancels)", got, want)
	}
}

// TestClusterKillRestartFromSnapshot drives the full failure story
// under deterministic chaos: warm a node with the whole workload
// (cancel faults firing on their fixed subset), snapshot it, crash it
// abruptly, show the survivors absorb its keyspace through the bounded
// fallback with statuses and answers unchanged, then restart it from
// the snapshot and show it comes back fully warm — zero recomputation
// anywhere. Cancel faults fire before any cache, proxy or compute, so
// the exactly-once accounting stays exact: computations are always the
// non-cancelled paths (plus the orphaned keys recomputed as fallback).
func TestClusterKillRestartFromSnapshot(t *testing.T) {
	opts := clusterOptions(t)
	opts.Chaos = &server.ChaosConfig{Seed: 21, CancelRate: 0.2}
	// The whole orphaned keyspace may arrive at once after the kill;
	// give the survivors a fallback budget sized for the workload so
	// phase 2 asserts absorption, not shedding (budget exhaustion has
	// its own test in internal/server).
	opts.PeerFallback = 18
	snapdir := t.TempDir()
	cluster, err := NewCluster(3, opts, snapdir)
	if err != nil {
		t.Fatal(err)
	}
	mix := Distinct(opts.Corpus, 5, 18)

	// Phase 1: the whole mix enters through n0, concurrently. n0 ends
	// up holding every non-cancelled key — its own by computing, the
	// rest by peer fill — and the cluster computes each exactly once.
	rep := Start(cluster.NodeHandler(0), mix).Wait()
	bodies := make(map[string]string, len(rep.Results))
	status := make(map[string]int, len(rep.Results))
	cancels := 0
	for _, res := range rep.Results {
		status[res.Path] = res.Status
		switch res.Status {
		case http.StatusOK:
			bodies[res.Path] = res.Body
		case 499:
			cancels++
		default:
			t.Fatalf("phase 1 %s: %d %s", res.Path, res.Status, res.Body)
		}
	}
	if cancels == 0 || cancels == len(mix.Paths) {
		t.Fatalf("chaos degenerate: %d/%d cancelled", cancels, len(mix.Paths))
	}
	computed := len(mix.Paths) - cancels
	if got := cluster.Computations(); got != uint64(computed) {
		t.Fatalf("phase 1 computed %d, want %d (paths minus cancels)", got, computed)
	}
	if n, err := cluster.Node(0).SaveCacheSnapshot(); err != nil || n != computed {
		t.Fatalf("snapshot: %d entries, err %v (want %d, nil)", n, err, computed)
	}

	// Phase 2: crash n0 — no drain, no flush — and replay through n1.
	// Chaos decisions are placement-independent, so the cancelled
	// subset is identical; n1 serves its own keys from cache, proxies
	// n2's to n2, and computes n0's orphaned keys itself under the
	// fallback budget.
	cluster.Kill(0)
	rep2 := Start(cluster.NodeHandler(1), mix).Wait()
	for _, res := range rep2.Results {
		if res.Status != status[res.Path] {
			t.Fatalf("phase 2 %s: status %d, phase 1 saw %d", res.Path, res.Status, status[res.Path])
		}
		if res.Status == http.StatusOK && res.Body != bodies[res.Path] {
			t.Fatalf("phase 2 %s: body changed after node loss", res.Path)
		}
	}
	fallbacks := metric(t, cluster.NodeHandler(1), "cuisinevol_peer_fallback_total")
	if fallbacks == 0 {
		t.Fatal("n0 owned no keys in the mix — fallback path never exercised")
	}
	afterKill := cluster.Computations()
	if want := uint64(computed) + uint64(fallbacks); afterKill != want {
		t.Fatalf("phase 2 computations %d, want %d (phase 1 + fallbacks)", afterKill, want)
	}

	// Phase 3: restart n0 from its snapshot. It rejoins warm — every
	// non-cancelled key served from the restored cache, byte-identical,
	// with zero new computations cluster-wide (and the cancelled subset
	// still cancels, exactly as before the crash).
	if err := cluster.Restart(0); err != nil {
		t.Fatal(err)
	}
	if got := metric(t, cluster.NodeHandler(0), "cuisinevol_peer_snapshot_loads_total"); got != 1 {
		t.Fatalf("snapshot loads on restarted node = %v, want 1", got)
	}
	if got := metric(t, cluster.NodeHandler(0), "cuisinevol_peer_snapshot_entries_total"); got != float64(computed) {
		t.Fatalf("snapshot entries restored = %v, want %d", got, computed)
	}
	rep3 := Start(cluster.NodeHandler(0), mix).Wait()
	for _, res := range rep3.Results {
		if res.Status != status[res.Path] {
			t.Fatalf("phase 3 %s: status %d, phase 1 saw %d", res.Path, res.Status, status[res.Path])
		}
		if res.Status != http.StatusOK {
			continue
		}
		if res.XCache != "HIT" {
			t.Fatalf("phase 3 %s: X-Cache=%q — restart was not warm", res.Path, res.XCache)
		}
		if res.Body != bodies[res.Path] {
			t.Fatalf("phase 3 %s: restored body drifted", res.Path)
		}
	}
	if got := cluster.Computations(); got != afterKill {
		t.Fatalf("warm restart recomputed: %d computations, want %d", got, afterKill)
	}
	if cluster.Node(0).Computations() != 0 {
		t.Fatalf("restarted node computed %d keys itself", cluster.Node(0).Computations())
	}
}

// TestClusterShedBoundedPerNode proves overload stays node-local and
// bounded in the tier: with every computation parked on a chaos gate,
// each owner admits at most Compute+MaxQueue of its keys and sheds the
// rest with 503 + Retry-After — relayed verbatim through whichever node
// the request entered, never amplified into fallback computes.
func TestClusterShedBoundedPerNode(t *testing.T) {
	const C, Q, N = 1, 1, 30
	gate := make(chan struct{})
	var parked atomic.Int64
	opts := clusterOptions(t)
	opts.Compute = C
	opts.MaxQueue = Q
	opts.Timeout = -1
	opts.Chaos = &server.ChaosConfig{
		Seed:        3,
		LatencyRate: 1,
		Block: func(ctx context.Context, key string) error {
			parked.Add(1)
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}
	cluster, err := NewCluster(3, opts, "")
	if err != nil {
		t.Fatal(err)
	}
	mix := Distinct(opts.Corpus, 13, N)
	run := Start(cluster.Handler(), mix)

	// Every node's compute slots fill with its own keys and park on the
	// gate; everything beyond each node's C+Q admission capacity sheds.
	eventually(t, "all compute slots parked", func() bool {
		return parked.Load() == int64(3*C)
	})
	shedTotal := func() float64 {
		var total float64
		for i := 0; i < cluster.Size(); i++ {
			total += metric(t, cluster.NodeHandler(i), "cuisinevol_shed_total")
		}
		return total
	}
	wantShed := float64(N - 3*(C+Q))
	eventually(t, "excess requests shed", func() bool { return shedTotal() == wantShed })

	sheds := run.Await(N - 3*(C+Q))
	for _, res := range sheds {
		if res.Status != http.StatusServiceUnavailable {
			t.Fatalf("%s completed %d while all slots were parked", res.Path, res.Status)
		}
		if res.RetryAfter == "" {
			t.Fatalf("%s: shed without Retry-After", res.Path)
		}
	}
	// Shedding is per-owner: every node was overloaded and refused work
	// rather than leaking it to peers as fallback computations.
	for i := 0; i < cluster.Size(); i++ {
		if v := metric(t, cluster.NodeHandler(i), "cuisinevol_shed_total"); v == 0 {
			t.Fatalf("node %d shed nothing — ownership never saturated it", i)
		}
		if v := metric(t, cluster.NodeHandler(i), "cuisinevol_peer_fallback_total"); v != 0 {
			t.Fatalf("node %d computed fallback work during overload: %v", i, v)
		}
	}

	close(gate)
	rest := Report{Results: run.Await(3 * (C + Q))}
	if got := rest.CountStatus(http.StatusOK); got != 3*(C+Q) {
		t.Fatalf("admitted requests: %d/%d OK, statuses %v", got, 3*(C+Q), rest.Statuses())
	}
	if got, want := cluster.Computations(), uint64(3*(C+Q)); got != want {
		t.Fatalf("cluster computed %d, want exactly %d (admission capacity)", got, want)
	}
	for i := 0; i < cluster.Size(); i++ {
		if got := cluster.Node(i).Computations(); got != C+Q {
			t.Fatalf("node %d computed %d, want exactly %d (its admission capacity)", i, got, C+Q)
		}
	}
}
