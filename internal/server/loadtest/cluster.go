package loadtest

import (
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"

	"cuisinevol/internal/peering"
	"cuisinevol/internal/server"
)

// Cluster is an in-process multi-node serving tier: n server.Server
// instances joined into one consistent-hash ring over a shared
// peering.MemTransport, plus a front door that spreads requests across
// the live nodes. It exists so the cluster-wide invariant tests can
// replay a deterministic workload against a real ring — proxying,
// peer fills, fallback, snapshots — without sockets or clocks.
//
// Nodes are named "n0".."n<n-1>". Kill makes a node abruptly
// unreachable (nothing is flushed — the crash case); Restart rebuilds
// it from its options, which restores its cache snapshot when the
// cluster was built with a snapshot directory. Computations counts
// cluster-wide computations across the whole history, including server
// objects replaced by Restart.
type Cluster struct {
	tr      *peering.MemTransport
	base    server.Options
	peers   map[string]string
	snapdir string

	mu      sync.Mutex
	nodes   []*server.Server
	down    []bool
	retired uint64 // computations of server objects replaced by Restart

	next atomic.Uint64 // front-door round-robin cursor
}

// NewCluster builds an n-node cluster from the option template. The
// template's peer fields (NodeID, Peers, PeerTransport,
// CacheSnapshotPath) are overwritten per node; everything else — seed,
// corpus, chaos, compute budget — is shared, which is what makes chaos
// decisions node-independent. snapshotDir, when non-empty, gives every
// node a snapshot file <dir>/<id>.snapshot restored on Restart.
func NewCluster(n int, base server.Options, snapshotDir string) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("loadtest: cluster needs >= 2 nodes, got %d", n)
	}
	c := &Cluster{
		tr:      peering.NewMemTransport(),
		base:    base,
		peers:   make(map[string]string, n),
		snapdir: snapshotDir,
		nodes:   make([]*server.Server, n),
		down:    make([]bool, n),
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i)
		c.peers[id] = "http://" + id
	}
	for i := 0; i < n; i++ {
		if err := c.boot(i); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// boot builds node i's server from the template and registers it on the
// transport. Callers hold no locks during NewCluster; Restart holds mu.
func (c *Cluster) boot(i int) error {
	id := fmt.Sprintf("n%d", i)
	opts := c.base
	opts.NodeID = id
	opts.Peers = c.peers
	opts.PeerTransport = c.tr
	if c.snapdir != "" {
		opts.CacheSnapshotPath = filepath.Join(c.snapdir, id+".snapshot")
	}
	srv, err := server.New(opts)
	if err != nil {
		return fmt.Errorf("loadtest: boot %s: %w", id, err)
	}
	c.nodes[i] = srv
	c.tr.Register(id, srv.Handler())
	return nil
}

// Size returns the number of nodes (live or killed).
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node i's current server object. After Restart this is a
// fresh object; per-node counters start over (Computations still
// accounts for the replaced object).
func (c *Cluster) Node(i int) *server.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[i]
}

// NodeHandler returns node i's handler — requests sent here land on
// that node exactly as a peer forward or a direct client would.
func (c *Cluster) NodeHandler(i int) http.Handler { return c.Node(i).Handler() }

// Handler returns the front door: each request is dispatched to the
// next live node round-robin, the way an L4 balancer with health checks
// spreads clients. Killed nodes are skipped; with every node down the
// front door answers 503 rather than hanging.
func (c *Cluster) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := int(c.next.Add(1))
		c.mu.Lock()
		var srv *server.Server
		for off := 0; off < len(c.nodes); off++ {
			i := (start + off) % len(c.nodes)
			if !c.down[i] {
				srv = c.nodes[i]
				break
			}
		}
		c.mu.Unlock()
		if srv == nil {
			http.Error(w, "loadtest: every cluster node is down", http.StatusServiceUnavailable)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
}

// Kill crashes node i: the front door stops routing to it and every
// peer forward to it fails like a refused connection. Nothing is
// snapshotted or drained — this is the abrupt-failure case. The dead
// server object keeps counting toward Computations.
func (c *Cluster) Kill(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down[i] = true
	c.tr.Kill(fmt.Sprintf("n%d", i))
}

// Restart replaces node i with a fresh server built from the same
// options — restoring its cache snapshot when the cluster has a
// snapshot directory — and rejoins it to the transport and front door.
// The replaced object's computations move into the retired accumulator
// so Computations stays monotonic across the swap.
func (c *Cluster) Restart(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retired += c.nodes[i].Computations()
	if err := c.boot(i); err != nil {
		return err
	}
	c.down[i] = false
	return nil
}

// Computations returns the cluster-wide computation count over the
// cluster's whole history: every live and killed server object, plus
// objects replaced by Restart. The exactly-once invariant is stated
// against this number.
func (c *Cluster) Computations() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.retired
	for _, srv := range c.nodes {
		total += srv.Computations()
	}
	return total
}

// SnapshotPath returns node i's snapshot file path, or "" when the
// cluster was built without a snapshot directory.
func (c *Cluster) SnapshotPath(i int) string {
	if c.snapdir == "" {
		return ""
	}
	return filepath.Join(c.snapdir, fmt.Sprintf("n%d.snapshot", i))
}
