// Package loadtest is an in-process load-replay harness for the serving
// layer: it generates seeded, reproducible request mixes over a
// synthetic corpus, fires them at an http.Handler — all released
// together, so the burst actually contends — and reports per-request
// outcomes plus scraped metrics. The overload tests are built on three
// properties the harness guarantees:
//
//   - mixes are pure functions of (corpus, seed, n): the same mix can be
//     replayed against a loaded chaotic server and an unloaded baseline
//     and compared byte for byte;
//   - Distinct mixes canonicalize to pairwise-distinct cache keys, so
//     nothing caches or coalesces across requests — the workload the
//     admission layer exists for;
//   - synchronization is event-driven (result arrival, gate channels),
//     never wall-clock sleeps, so the invariant tests are deterministic
//     under -race and arbitrary scheduler interleavings.
package loadtest

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"cuisinevol/internal/randx"
	"cuisinevol/internal/recipe"
)

// Mix is a reproducible request workload: an ordered list of request
// paths derived from a seed.
type Mix struct {
	Seed  uint64
	Paths []string
}

// Distinct generates n pairwise-distinct request paths over the corpus's
// cuisines: mine and overrep queries whose numeric parameter embeds the
// request index, so every path canonicalizes to a unique cache key and
// no two requests can share a cache entry or coalesce. Regions are drawn
// from a seeded RNG; the whole mix is deterministic in (corpus, seed, n).
func Distinct(corpus *recipe.Corpus, seed uint64, n int) Mix {
	regions := corpus.Regions()
	rng := randx.New(seed)
	paths := make([]string, n)
	for i := range paths {
		region := regions[rng.Intn(len(regions))]
		if i%2 == 0 {
			paths[i] = fmt.Sprintf("/v1/mine?region=%s&top=%d", region, 1+i)
		} else {
			paths[i] = fmt.Sprintf("/v1/overrep?region=%s&k=%d", region, 1+i%500)
		}
	}
	return Mix{Seed: seed, Paths: paths}
}

// Repeat appends every path in the mix k-1 more times, producing the
// duplicate-heavy workload that exercises caching and coalescing under
// load. Order interleaves copies so duplicates actually overlap.
func (m Mix) Repeat(k int) Mix {
	out := Mix{Seed: m.Seed, Paths: make([]string, 0, len(m.Paths)*k)}
	for i := 0; i < k; i++ {
		out.Paths = append(out.Paths, m.Paths...)
	}
	return out
}

// Result is one replayed request's outcome.
type Result struct {
	Path       string
	Status     int
	Body       string
	RetryAfter string // Retry-After header, "" when absent
	XCache     string // X-Cache header (HIT/MISS), "" when absent
	Duration   time.Duration
}

// Report aggregates a completed replay.
type Report struct {
	Results []Result
}

// CountStatus returns how many results completed with the given code.
func (r Report) CountStatus(code int) int {
	n := 0
	for _, res := range r.Results {
		if res.Status == code {
			n++
		}
	}
	return n
}

// Statuses returns the set of distinct status codes observed.
func (r Report) Statuses() map[int]int {
	out := make(map[int]int)
	for _, res := range r.Results {
		out[res.Status]++
	}
	return out
}

// Run is an in-flight concurrent replay started by Start.
type Run struct {
	results   chan Result
	remaining int
}

// Start fires every request in the mix concurrently against h — all
// goroutines released on the same barrier — and returns immediately.
// Collect outcomes with Await (the next k completions, in completion
// order) and Wait (everything left).
func Start(h http.Handler, mix Mix) *Run {
	run := &Run{
		results:   make(chan Result, len(mix.Paths)),
		remaining: len(mix.Paths),
	}
	release := make(chan struct{})
	for _, path := range mix.Paths {
		go func(path string) {
			<-release
			run.results <- do(h, path)
		}(path)
	}
	close(release)
	return run
}

// Await blocks until k more requests complete and returns them in
// completion order.
func (r *Run) Await(k int) []Result {
	if k > r.remaining {
		k = r.remaining
	}
	out := make([]Result, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, <-r.results)
		r.remaining--
	}
	return out
}

// Wait collects every remaining completion into a Report.
func (r *Run) Wait() Report {
	return Report{Results: r.Await(r.remaining)}
}

// Baseline replays the mix one request at a time — the unloaded
// reference run — and returns the path→body map of 200 responses, the
// ground truth the loaded run's completions must match byte for byte.
func Baseline(h http.Handler, mix Mix) map[string]string {
	out := make(map[string]string, len(mix.Paths))
	for _, path := range mix.Paths {
		res := do(h, path)
		if res.Status == http.StatusOK {
			out[path] = res.Body
		}
	}
	return out
}

// do executes one in-process request.
func do(h http.Handler, path string) Result {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	start := time.Now()
	h.ServeHTTP(rec, req)
	return Result{
		Path:       path,
		Status:     rec.Code,
		Body:       rec.Body.String(),
		RetryAfter: rec.Header().Get("Retry-After"),
		XCache:     rec.Header().Get("X-Cache"),
		Duration:   time.Since(start),
	}
}

// Metric scrapes /metrics from h and returns the value of the named
// family/series. The name must match the exposition line's name part
// exactly, labels included (e.g. "cuisinevol_shed_total").
func Metric(h http.Handler, name string) (float64, bool) {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}
