package server

import (
	"context"
	"fmt"
	"hash/fnv"

	"cuisinevol/internal/sched"
)

// Fault enumerates the injectable fault kinds.
type Fault int

const (
	// FaultNone injects nothing; the request proceeds normally.
	FaultNone Fault = iota
	// FaultError fails the computation with a ChaosError (a 500).
	FaultError
	// FaultCancel simulates the client disconnecting before the response
	// is written (a 499).
	FaultCancel
	// FaultLatency routes the computation through ChaosConfig.Block,
	// holding it until the test releases it (or its context dies).
	FaultLatency
	// FaultItem fails an individual scheduler work item (one replicate
	// or one cuisine mine) inside an otherwise healthy computation.
	FaultItem
)

// String names the fault for metrics labels.
func (f Fault) String() string {
	switch f {
	case FaultError:
		return "error"
	case FaultCancel:
		return "cancel"
	case FaultLatency:
		return "latency"
	case FaultItem:
		return "item"
	default:
		return "none"
	}
}

// ChaosError marks a failure injected by the chaos layer, so tests (and
// operators reading error bodies) can tell injected faults from real
// bugs with errors.As.
type ChaosError struct {
	// Fault is the injected fault kind.
	Fault Fault
	// Key identifies the faulted request (endpoint?canonical-params),
	// empty for item-level faults.
	Key string
	// Item is the scheduler item index for FaultItem, -1 otherwise.
	Item int
}

func (e *ChaosError) Error() string {
	if e.Fault == FaultItem {
		return fmt.Sprintf("chaos: injected %s fault (item %d)", e.Fault, e.Item)
	}
	return fmt.Sprintf("chaos: injected %s fault (%s)", e.Fault, e.Key)
}

// ChaosConfig configures the deterministic fault-injection layer. Every
// decision is a pure function of (Seed, request key) or (Seed, item
// index) — never of arrival order, goroutine scheduling or the clock —
// so a chaotic run is exactly reproducible: the same seed faults the
// same requests no matter how the load interleaves. There are no
// wall-clock sleeps anywhere: "latency" is a test-controlled gate
// (Block), which the tests open on events, not timers.
//
// Chaos is a test/staging facility wired through Options.Chaos; a nil
// config (the default) compiles the whole layer down to a nil-receiver
// fast path.
type ChaosConfig struct {
	// Seed drives every fault decision.
	Seed uint64
	// ErrorRate, CancelRate and LatencyRate are per-request fault
	// probabilities in [0, 1], keyed by the request's cache identity.
	// They partition the unit interval in that order, so their sum must
	// be <= 1.
	ErrorRate   float64
	CancelRate  float64
	LatencyRate float64
	// Block is called (on the computation's context) for every
	// latency-faulted computation; it must return when the test releases
	// the request or ctx dies. Required when LatencyRate > 0.
	Block func(ctx context.Context, key string) error
	// ItemErrorRate is the per-work-item fault probability: each
	// scheduler item (a model replicate, a cuisine mine) fails
	// independently, keyed by its index — the replicate-level fault the
	// ensemble pipelines must surface as typed errors, not corrupt
	// aggregates.
	ItemErrorRate float64
}

// chaos is the installed fault injector. All methods are safe on a nil
// receiver, which is how the production (chaos-free) path runs.
type chaos struct {
	cfg ChaosConfig
	m   *metrics
}

func newChaos(cfg *ChaosConfig, m *metrics) *chaos {
	if cfg == nil {
		return nil
	}
	return &chaos{cfg: *cfg, m: m}
}

// unitFloat maps (seed, key) to a uniform float in [0, 1) via FNV-1a
// and a SplitMix64 finalizer — deterministic, order-free, well mixed.
func unitFloat(seed uint64, key string) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	z := seed ^ h.Sum64()
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// faultFor decides this request's fault. The rates partition [0, 1) in
// error → cancel → latency order.
func (c *chaos) faultFor(key string) Fault {
	if c == nil {
		return FaultNone
	}
	u := unitFloat(c.cfg.Seed, key)
	switch {
	case u < c.cfg.ErrorRate:
		return FaultError
	case u < c.cfg.ErrorRate+c.cfg.CancelRate:
		return FaultCancel
	case u < c.cfg.ErrorRate+c.cfg.CancelRate+c.cfg.LatencyRate:
		return FaultLatency
	default:
		return FaultNone
	}
}

// wrapCompute applies the decided fault to a computation and, when item
// faults are enabled, threads the scheduler hook into its context so
// replicate-level failures originate inside the fan-out, exactly where
// a real failure would.
func (c *chaos) wrapCompute(key string, fault Fault, compute func(ctx context.Context) (any, error)) func(ctx context.Context) (any, error) {
	if c == nil {
		return compute
	}
	return func(ctx context.Context) (any, error) {
		switch fault {
		case FaultError:
			c.m.chaosInjected[FaultError].Add(1)
			return nil, &ChaosError{Fault: FaultError, Key: key, Item: -1}
		case FaultLatency:
			c.m.chaosInjected[FaultLatency].Add(1)
			if err := c.cfg.Block(ctx, key); err != nil {
				return nil, err
			}
		}
		if c.cfg.ItemErrorRate > 0 {
			ctx = sched.WithItemHook(ctx, c.itemHook())
		}
		return compute(ctx)
	}
}

// itemHook fails scheduler item i with probability ItemErrorRate, keyed
// by the item index alone so the same items fail on every run.
func (c *chaos) itemHook() sched.ItemHook {
	return func(i int) error {
		if unitFloat(c.cfg.Seed^0xC8A05F5E0A5C11E5, fmt.Sprintf("item/%d", i)) < c.cfg.ItemErrorRate {
			c.m.chaosInjected[FaultItem].Add(1)
			return &ChaosError{Fault: FaultItem, Item: i}
		}
		return nil
	}
}
