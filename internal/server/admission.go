package server

import (
	"context"
	"net/http"
	"sync/atomic"
)

// admission is the bounded-admission controller in front of the compute
// pool. The PR-2 server gated computations on a bare semaphore, which
// under a burst of distinct (uncacheable, uncoalesceable) requests
// queued excess load unboundedly: every goroutine parked on the
// semaphore forever, slow to fail and expensive to hold. admission
// bounds both dimensions:
//
//   - slots caps concurrent computations (the old semaphore);
//   - maxQueue caps how many acquirers may wait for a slot. An acquirer
//     arriving to a full queue is shed immediately with a 503 and a
//     Retry-After hint — it never consumes a slot and never parks —
//     so overload degrades into fast, explicit rejections instead of
//     an ever-growing goroutine pile.
//
// Acquisition is deadline-aware: a queued acquirer whose context dies
// (request deadline, client disconnect, or the singleflight group
// cancelling an abandoned computation) leaves the queue immediately.
// Shed and queue-exit outcomes are all counted on the shared metrics
// registry, so /metrics tells the whole overload story.
type admission struct {
	slots      chan struct{}
	maxQueue   int64
	queued     atomic.Int64
	retryAfter int // seconds, for the 503 hint
	m          *metrics
}

func newAdmission(slots, maxQueue, retryAfter int, m *metrics) *admission {
	return &admission{
		slots:      make(chan struct{}, slots),
		maxQueue:   int64(maxQueue),
		retryAfter: retryAfter,
		m:          m,
	}
}

// Acquire takes a compute slot. The fast path takes a free slot without
// queueing; otherwise the caller joins the wait queue unless it is
// already full, in which case the request is shed with a 503-carrying
// error. A queued caller waits until a slot frees or ctx dies.
func (a *admission) Acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.m.inflight.Add(1)
		return nil
	default:
	}
	// Join the queue via CAS against the cap: the count never overshoots
	// maxQueue, so "at most Compute running plus MaxQueue waiting" is a
	// hard bound, not a best effort.
	for {
		q := a.queued.Load()
		if q >= a.maxQueue {
			a.m.shedComputations.Add(1)
			return &httpError{
				status:     http.StatusServiceUnavailable,
				msg:        "compute queue full, request shed",
				retryAfter: a.retryAfter,
			}
		}
		if a.queued.CompareAndSwap(q, q+1) {
			break
		}
	}
	a.m.waiting.Add(1)
	defer func() {
		a.queued.Add(-1)
		a.m.waiting.Add(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		a.m.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees the slot taken by a successful Acquire.
func (a *admission) Release() {
	<-a.slots
	a.m.inflight.Add(-1)
}
