package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cuisinevol/internal/evomodel"
	"cuisinevol/internal/sched"
)

// spinUntil busy-waits (yielding the scheduler) until cond holds. It
// bridges the instant between an event that has already been triggered
// and its observable effect (an atomic write in another goroutine) —
// synchronization on progress, not on the clock.
func spinUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("condition never held: %s", what)
}

func TestAdmissionBoundsAndShedding(t *testing.T) {
	m := newMetrics()
	a := newAdmission(2, 1, shedRetryAfter, m)
	ctx := context.Background()

	// Both slots acquire immediately.
	for i := 0; i < 2; i++ {
		if err := a.Acquire(ctx); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	// One waiter fits in the queue.
	waiterDone := make(chan error, 1)
	go func() { waiterDone <- a.Acquire(ctx) }()
	spinUntil(t, "waiter queued", func() bool { return a.queued.Load() == 1 })

	// The queue is full: the next arrival is shed with a 503 carrying a
	// Retry-After hint, without blocking.
	err := a.Acquire(ctx)
	var he *httpError
	if !errors.As(err, &he) || he.status != http.StatusServiceUnavailable {
		t.Fatalf("full queue: got %v, want 503 httpError", err)
	}
	if he.retryAfter != shedRetryAfter {
		t.Fatalf("shed Retry-After = %d, want %d", he.retryAfter, shedRetryAfter)
	}
	if got := m.shedComputations.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Releasing a slot hands it to the queued waiter.
	a.Release()
	if err := <-waiterDone; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	spinUntil(t, "queue drained", func() bool { return a.queued.Load() == 0 })

	// A waiter whose context dies while queued leaves the queue.
	cctx, cancel := context.WithCancel(context.Background())
	go func() { waiterDone <- a.Acquire(cctx) }()
	spinUntil(t, "cancellable waiter queued", func() bool { return a.queued.Load() == 1 })
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	if a.queued.Load() != 0 {
		t.Fatalf("cancelled waiter left queue count at %d", a.queued.Load())
	}

	// Shedding never consumed a slot: exactly the two original acquires
	// plus the waiter hold slots now.
	if got := m.inflight.Load(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
}

func TestChaosFaultDeterminism(t *testing.T) {
	cfg := ChaosConfig{Seed: 99, ErrorRate: 0.2, CancelRate: 0.2, LatencyRate: 0.2}
	a := newChaos(&cfg, newMetrics())
	b := newChaos(&cfg, newMetrics())
	counts := make(map[Fault]int)
	for i := 0; i < 400; i++ {
		key := "/v1/mine?region=ITA&top=" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		f := a.faultFor(key)
		if g := b.faultFor(key); g != f {
			t.Fatalf("fault for %q differs across instances: %v vs %v", key, f, g)
		}
		if g := a.faultFor(key); g != f {
			t.Fatalf("fault for %q differs across calls: %v vs %v", key, f, g)
		}
		counts[f]++
	}
	// With 60% total fault rate over 400 distinct keys, every kind must
	// appear and none may dominate completely — a sanity check that the
	// hash actually partitions the unit interval.
	for _, f := range []Fault{FaultNone, FaultError, FaultCancel, FaultLatency} {
		if counts[f] == 0 {
			t.Fatalf("fault kind %v never selected: %v", f, counts)
		}
	}
	// A different seed faults a different subset.
	other := newChaos(&ChaosConfig{Seed: 100, ErrorRate: 0.2, CancelRate: 0.2, LatencyRate: 0.2}, newMetrics())
	same := 0
	for i := 0; i < 400; i++ {
		key := "/v1/overrep?k=" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if a.faultFor(key) == other.faultFor(key) {
			same++
		}
	}
	if same == 400 {
		t.Fatal("seed change did not change any fault decision")
	}
	// Nil chaos injects nothing.
	var nilChaos *chaos
	if f := nilChaos.faultFor("anything"); f != FaultNone {
		t.Fatalf("nil chaos faulted: %v", f)
	}
}

// TestDeadlineProducesStructured504 holds a computation at the chaos
// gate until the request's deadline budget expires and asserts the
// caller gets a structured 504 with a Retry-After hint while the
// timeout counter advances. The elapsed time is the deadline actually
// firing — the one place wall-clock time is the thing under test.
func TestDeadlineProducesStructured504(t *testing.T) {
	srv, err := New(Options{
		Seed:       42,
		Replicates: 2,
		Compute:    2,
		Timeout:    80 * time.Millisecond, // /v1/overrep budget: 20ms
		Corpus:     testCorpus(t),
		Chaos: &ChaosConfig{
			Seed:        7,
			LatencyRate: 1.0,
			Block: func(ctx context.Context, key string) error {
				<-ctx.Done()
				return ctx.Err()
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/overrep?region=ITA&k=3", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (want 504), body %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("504 without Retry-After header")
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "deadline exceeded") {
		t.Fatalf("504 body: %s", rec.Body.String())
	}
	if _, ok := body["retry_after_seconds"]; !ok {
		t.Fatalf("504 body missing retry_after_seconds: %s", rec.Body.String())
	}
	if got := srv.metrics.deadlineTimeouts.Load(); got != 1 {
		t.Fatalf("deadline timeout counter = %d, want 1", got)
	}
	// The abandoned computation's context was cancelled, so the gate
	// released and the slot drained.
	spinUntil(t, "slot released after deadline", func() bool {
		return srv.metrics.inflight.Load() == 0
	})
}

// TestClientCancelMidComputeIs499 cancels the request context while the
// computation is parked at the chaos gate — the mid-mine disconnect —
// and asserts the 499 path, not a 504 and not a timeout count.
func TestClientCancelMidComputeIs499(t *testing.T) {
	var blocked atomic.Int64
	srv, err := New(Options{
		Seed:       42,
		Replicates: 2,
		Compute:    2,
		Timeout:    -1, // deadlines off: only the client can end this
		Corpus:     testCorpus(t),
		Chaos: &ChaosConfig{
			Seed:        7,
			LatencyRate: 1.0,
			Block: func(ctx context.Context, key string) error {
				blocked.Add(1)
				<-ctx.Done()
				return ctx.Err()
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/mine?region=ITA&top=9", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	spinUntil(t, "compute parked at gate", func() bool { return blocked.Load() == 1 })
	cancel()
	<-done
	if rec.Code != 499 {
		t.Fatalf("status %d (want 499), body %s", rec.Code, rec.Body.String())
	}
	if got := srv.metrics.deadlineTimeouts.Load(); got != 0 {
		t.Fatalf("client cancel counted as deadline timeout (%d)", got)
	}
	spinUntil(t, "slot released after cancel", func() bool {
		return srv.metrics.inflight.Load() == 0
	})
}

// TestItemFaultSurfacesTypedErrors enables replicate-level chaos and
// asserts the failure propagates out of /v1/evolve as a 500 whose cause
// chain carries both the typed ReplicateError (which replicate died)
// and the ChaosError (that the death was injected).
func TestItemFaultSurfacesTypedErrors(t *testing.T) {
	srv, err := New(Options{
		Seed:       42,
		Replicates: 4,
		Compute:    2,
		Corpus:     testCorpus(t),
		Chaos:      &ChaosConfig{Seed: 7, ItemErrorRate: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/evolve?region=ITA&model=NM&replicates=4", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d (want 500), body %s", rec.Code, rec.Body.String())
	}
	msg := rec.Body.String()
	if !strings.Contains(msg, "replicate") || !strings.Contains(msg, "chaos: injected item fault") {
		t.Fatalf("error body does not carry replicate + chaos detail: %s", msg)
	}
	if got := srv.metrics.chaosInjected[FaultItem].Load(); got == 0 {
		t.Fatal("item fault counter did not advance")
	}

	// The same path exercised directly: the ensemble returns an
	// errors.As-able ReplicateError wrapping the injected ChaosError.
	var repErr *evomodel.ReplicateError
	var chaosErr *ChaosError
	_, eerr := evomodel.RunEnsembleCtx(
		sched.WithItemHook(context.Background(), srv.chaos.itemHook()),
		evomodel.EnsembleConfig{
			Params:     evomodel.ParamsForView(srv.corpus.Region("ITA"), evomodel.NullModel, 42),
			Replicates: 4,
			MinSupport: 0.05,
		}, srv.corpus.Lexicon())
	if eerr == nil {
		t.Fatal("ensemble with 100% item faults succeeded")
	}
	if !errors.As(eerr, &repErr) {
		t.Fatalf("not a ReplicateError: %v", eerr)
	}
	if !errors.As(eerr, &chaosErr) || chaosErr.Fault != FaultItem {
		t.Fatalf("ReplicateError does not wrap the ChaosError: %v", eerr)
	}
	if repErr.Replicate != chaosErr.Item {
		t.Fatalf("replicate index %d != faulted item %d", repErr.Replicate, chaosErr.Item)
	}
}

// TestShedResponseShape drives the 503 path through the HTTP layer: one
// request parks in the only compute slot, the queue is disabled, and a
// second distinct request must shed immediately with Retry-After.
func TestShedResponseShape(t *testing.T) {
	var blocked atomic.Int64
	gate := make(chan struct{})
	srv, err := New(Options{
		Seed:       42,
		Replicates: 2,
		Compute:    1,
		MaxQueue:   -1, // no queue: shed as soon as the slot is busy
		Timeout:    -1,
		Corpus:     testCorpus(t),
		Chaos: &ChaosConfig{
			Seed:        7,
			LatencyRate: 1.0,
			Block: func(ctx context.Context, key string) error {
				blocked.Add(1)
				select {
				case <-gate:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	first := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/mine?region=ITA&top=5", nil))
		first <- rec.Code
	}()
	spinUntil(t, "first request holds the slot", func() bool { return blocked.Load() == 1 })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/mine?region=ITA&top=6", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d (want 503), body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["retry_after_seconds"] != float64(shedRetryAfter) {
		t.Fatalf("503 body: %s", rec.Body.String())
	}
	if got := srv.metrics.shedComputations.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	close(gate)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("gated request finished %d (want 200)", code)
	}
}
