package server

import (
	"bytes"
	"net/http"
	"testing"
)

// TestMineKernelParam pins the /v1/mine kernel contract: every kernel
// returns byte-identical results (the differential guarantee carried
// through the HTTP layer), yet each kernel caches under its own key —
// the cache key canonicalizes the kernel because it names a distinct
// computation, not a distinct result.
func TestMineKernelParam(t *testing.T) {
	srv, ts := newTestServer(t)

	respE, bodyE := get(t, ts, "/v1/mine?region=ITA&kernel=eclat")
	respF, bodyF := get(t, ts, "/v1/mine?region=ITA&kernel=fpgrowth")
	if respE.StatusCode != http.StatusOK || respF.StatusCode != http.StatusOK {
		t.Fatalf("status eclat=%d fpgrowth=%d", respE.StatusCode, respF.StatusCode)
	}
	if !bytes.Equal(bodyE, bodyF) {
		t.Fatalf("kernels disagree over HTTP:\neclat:    %.200s\nfpgrowth: %.200s", bodyE, bodyF)
	}
	etagE, etagF := respE.Header.Get("ETag"), respF.Header.Get("ETag")
	if etagE == "" || etagE == etagF {
		t.Fatalf("kernel must be part of the cache identity: eclat etag %q, fpgrowth etag %q", etagE, etagF)
	}
	if got := srv.Computations(); got != 2 {
		t.Fatalf("two kernels over one corpus cost %d computations, want 2", got)
	}

	// Both entries are now cached: re-requests hit without recomputing.
	before := srv.Computations()
	respE2, _ := get(t, ts, "/v1/mine?region=ITA&kernel=eclat")
	respF2, _ := get(t, ts, "/v1/mine?region=ITA&kernel=fpgrowth")
	if srv.Computations() != before {
		t.Fatalf("cached kernel requests recomputed: %d -> %d", before, srv.Computations())
	}
	if respE2.Header.Get("ETag") != etagE || respF2.Header.Get("ETag") != etagF {
		t.Fatal("cached responses changed ETags")
	}

	// An absent kernel and an explicit kernel=auto canonicalize to the
	// same entry; aliases accepted by ParseKernel do too.
	get(t, ts, "/v1/mine?region=ITA")
	before = srv.Computations()
	for _, path := range []string{
		"/v1/mine?region=ITA&kernel=auto",
		"/v1/mine?region=ITA&kernel=",
	} {
		if resp, _ := get(t, ts, path); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	if srv.Computations() != before {
		t.Fatalf("kernel=auto did not share the default's cache entry: %d -> %d", before, srv.Computations())
	}
	before = srv.Computations()
	if resp, _ := get(t, ts, "/v1/mine?region=ITA&kernel=bitset"); resp.StatusCode != http.StatusOK {
		t.Fatalf("kernel=bitset: status %d", resp.StatusCode)
	}
	if srv.Computations() != before {
		t.Fatalf("alias bitset did not share eclat's cache entry: %d -> %d", before, srv.Computations())
	}

	// Unknown kernels are a client error, reported before any compute.
	resp, body := get(t, ts, "/v1/mine?region=ITA&kernel=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("kernel=bogus: status %d (want 400), body %s", resp.StatusCode, body)
	}
}
