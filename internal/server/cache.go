package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// resultKey addresses a cached result by content: the SHA-256 of
// (corpus fingerprint, endpoint, canonicalized params). Two requests
// share an entry exactly when they are guaranteed byte-identical
// answers — same corpus, same computation, same parameters — so the
// cache never needs invalidation, only eviction.
func resultKey(fingerprint, endpoint, params string) string {
	h := sha256.New()
	h.Write([]byte(fingerprint))
	h.Write([]byte{0})
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write([]byte(params))
	return hex.EncodeToString(h.Sum(nil))
}

// resultCache is an LRU byte cache with a total-size budget. Values are
// immutable rendered response bodies; eviction walks from the least
// recently used entry until the budget holds.
type resultCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key string
	val []byte
}

// newResultCache returns a cache bounded at budget bytes (counting only
// body bytes; bookkeeping overhead is ignored). budget <= 0 disables
// caching entirely: every Get misses and Put is a no-op.
func newResultCache(budget int64) *resultCache {
	return &resultCache{
		budget:  budget,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached body for key, marking it most recently used.
func (c *resultCache) Get(key string) ([]byte, bool) {
	return c.get(key, true)
}

// Peek is Get without touching the hit/miss counters — for
// double-checked lookups that would otherwise double-count a request.
func (c *resultCache) Peek(key string) ([]byte, bool) {
	return c.get(key, false)
}

func (c *resultCache) get(key string, count bool) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		if count {
			c.misses++
		}
		return nil, false
	}
	if count {
		c.hits++
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts a body under key, evicting LRU entries to fit the budget.
// Bodies larger than the whole budget are not cached.
func (c *resultCache) Put(key string, val []byte) {
	size := int64(len(val))
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Same content hash ⇒ same bytes; just refresh recency.
		c.order.MoveToFront(el)
		return
	}
	for c.used+size > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, ev.key)
		c.used -= int64(len(ev.val))
		c.evictions++
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	c.used += size
}

// Entries returns a copy of the cached entries ordered least-recently
// used first — the order the peering snapshot stores them in, so a
// restore that replays Puts front to back reconstructs the recency
// order. Values are the cache's immutable bodies (never mutated by the
// cache or its callers), so sharing the slices is safe.
func (c *resultCache) Entries() []cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, len(c.entries))
	for el := c.order.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*cacheEntry))
	}
	return out
}

// Stats returns cumulative hit/miss/eviction counters and current usage.
func (c *resultCache) Stats() (hits, misses, evictions uint64, used int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.used, len(c.entries)
}
